package core

import (
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// The IOP window loop.  Each IOP walks its file domain in CollBufSize
// windows; for every window it (write) optionally pre-reads the window,
// receives and merges each AP's chunk, and writes the window back, or
// (read) reads the window and sends each AP its portion.
//
// Two variants share the engine-provided iopWindow state:
//
//   - iopSequential: one window at a time, every phase in order — the
//     classic two-phase loop, kept as the DisableCollPipeline ablation
//     baseline.
//
//   - iopPipelined (the default): a double-buffered pipeline over two
//     window buffers.  Window k+1's pre-read and window k-1's
//     write-back run in the background while window k's AP exchange and
//     copying proceed on the main goroutine, overlapping storage time
//     with communication time.  Safe because windows are disjoint file
//     ranges, backends accept concurrent access, and all MPI traffic
//     stays on the main goroutine (preserving per-pair message order).
//
// The pipeline's steady state is allocation-free: the two window
// buffers come from the pool, each slot owns one persistent worker
// goroutine fed by reusable channels of value structs (no per-window
// goroutines, channels, or window descriptors), and the engines recycle
// their per-window state via iopWindow.release.
//
// All Stats fields are updated on the main goroutine only; background
// I/O durations travel back through the reply tokens.

// iopProcess runs this rank's IOP role: engine setup (the list-based
// engine receives one access list from every AP — this must happen even
// for an empty domain, to drain the AP phase-1 messages), then the
// window loop over the domain.  Failures come back phase-attributed for
// the error-agreement vote.
func (f *File) iopProcess(pl *collPlan, write bool) *CollectiveError {
	ssp := f.tr.Begin(trace.PhaseIOPSetup, trace.NoWindow, 0)
	iop, err := f.eng.iopSetup(pl)
	ssp.End()
	if err != nil {
		return &CollectiveError{Rank: f.p.Rank(), Phase: PhaseIOPSetup, Err: err}
	}
	domLo, domHi := pl.domain(f.p.Rank())
	if domLo >= domHi {
		return nil
	}
	winSize := min(int64(f.opts.CollBufSize), domHi-domLo)
	if f.opts.DisableCollPipeline {
		err = f.iopSequential(iop, domLo, domHi, winSize, write)
	} else {
		err = f.iopPipelined(iop, domLo, domHi, winSize, write)
	}
	if err != nil {
		return &CollectiveError{Rank: f.p.Rank(), Phase: PhaseIOPWindow, Err: err}
	}
	return nil
}

// iopExchangeWrite receives every AP's chunk for one window and merges
// it into the window buffer w, accounting exchange and copy time.  The
// received chunks are owned by this rank (SendNoCopy transfers
// ownership end-to-end) and are returned to the pool after merging.
// winLo annotates the trace spans with the window's file offset.
func (f *File) iopExchangeWrite(iw iopWindow, w []byte, winLo int64) {
	for r := 0; r < f.p.Size(); r++ {
		if iw.chunkLen(r) == 0 {
			continue
		}
		esp := f.tr.Begin(trace.PhaseExchange, winLo, 0)
		t0 := time.Now()
		chunk, _, _ := f.p.Recv(r, tagCollData)
		t1 := time.Now()
		esp.EndBytes(int64(len(chunk)))
		csp := f.tr.Begin(trace.PhaseCopy, winLo, int64(len(chunk)))
		iw.copyIn(w, r, chunk)
		csp.End()
		f.bp.Put(chunk)
		en, cn := t1.Sub(t0).Nanoseconds(), time.Since(t1).Nanoseconds()
		f.Stats.ExchangeNs += en
		f.Stats.CopyNs += cn
		f.om.exchangeNs.Add(en)
		f.om.copyNs.Add(cn)
	}
}

// iopExchangeRead extracts every AP's portion of the window buffer w
// and sends it, accounting copy and exchange time.  Chunk ownership
// passes to the transport and onward to the receiving AP, which
// recycles it after unpacking.
func (f *File) iopExchangeRead(iw iopWindow, w []byte, winLo int64) {
	for r := 0; r < f.p.Size(); r++ {
		n := iw.chunkLen(r)
		if n == 0 {
			continue
		}
		csp := f.tr.Begin(trace.PhaseCopy, winLo, n)
		t0 := time.Now()
		chunk := f.bp.Get(int(n))
		iw.copyOut(w, r, chunk)
		t1 := time.Now()
		csp.End()
		esp := f.tr.Begin(trace.PhaseExchange, winLo, n)
		f.p.SendNoCopy(r, tagCollData, chunk)
		esp.End()
		cn, en := t1.Sub(t0).Nanoseconds(), time.Since(t1).Nanoseconds()
		f.Stats.CopyNs += cn
		f.Stats.ExchangeNs += en
		f.om.copyNs.Add(cn)
		f.om.exchangeNs.Add(en)
	}
}

// iopSequential is the strictly ordered window loop.
func (f *File) iopSequential(iop iopState, domLo, domHi, winSize int64, write bool) error {
	win := f.bp.Get(int(winSize))
	defer f.bp.Put(win)
	for winLo := domLo; winLo < domHi; winLo += winSize {
		winHi := min(winLo+winSize, domHi)
		w := win[:winHi-winLo]
		iw := iop.window(winLo, winHi)
		if iw.total() == 0 {
			iw.release()
			continue
		}
		wsp := f.tr.Begin(trace.PhaseWindow, winLo, iw.total())
		if write {
			covered := !f.opts.DisableMergeCheck && iw.covered()
			if covered {
				f.Stats.PreReadsSkipped++
				f.om.preSkipped.Inc()
			} else {
				rsp := f.tr.Begin(trace.PhasePreRead, winLo, int64(len(w)))
				t0 := time.Now()
				err := storage.ReadFull(f.sh.b, w, winLo)
				rsp.End()
				sn := time.Since(t0).Nanoseconds()
				f.Stats.StorageNs += sn
				f.om.storageNs.Add(sn)
				if err != nil {
					wsp.End()
					iw.release()
					return err
				}
			}
			f.iopExchangeWrite(iw, w, winLo)
			bsp := f.tr.Begin(trace.PhaseWriteBack, winLo, int64(len(w)))
			t0 := time.Now()
			_, err := f.sh.b.WriteAt(w, winLo)
			bsp.End()
			sn := time.Since(t0).Nanoseconds()
			f.Stats.StorageNs += sn
			f.om.storageNs.Add(sn)
			if err != nil {
				wsp.End()
				iw.release()
				return err
			}
			f.Stats.SieveWrites++
			f.om.sieveWrites.Inc()
		} else {
			rsp := f.tr.Begin(trace.PhasePreRead, winLo, int64(len(w)))
			t0 := time.Now()
			err := storage.ReadFull(f.sh.b, w, winLo)
			rsp.End()
			sn := time.Since(t0).Nanoseconds()
			f.Stats.StorageNs += sn
			f.om.storageNs.Add(sn)
			if err != nil {
				wsp.End()
				iw.release()
				return err
			}
			f.Stats.SieveReads++
			f.om.sieveReads.Inc()
			f.iopExchangeRead(iw, w, winLo)
		}
		wsp.End()
		f.om.windows.Inc()
		iw.release()
	}
	return nil
}

// ioToken carries the result of background storage access through the
// pipeline's channels: its error and its duration.
type ioToken struct {
	err error
	ns  int64
}

// pipeReq is one request to a slot worker.
type pipeReq struct {
	lo, hi int64
	kind   uint8 // pipePrep or pipeWrite
	read   bool  // pipePrep: pre-read the window into the slot buffer
}

const (
	pipePrep  = uint8(iota) // prepare the slot for a window (optional pre-read)
	pipeWrite               // write the slot buffer back to storage
)

// pipeSlot is one of the two window buffers with its persistent worker.
// Requests are processed FIFO, which encodes the slot discipline: a
// window's prep (and therefore its pre-read) cannot start before the
// slot's previous write-back finished.  req has capacity 2 — at most
// one outstanding write-back plus one prep are ever queued — so the
// main goroutine never blocks enqueueing.
type pipeSlot struct {
	buf  []byte
	req  chan pipeReq // main → worker
	done chan ioToken // worker → main: prep complete, slot buffer ready
	fin  chan ioToken // worker → main: trailing write-back result at exit
}

// slotWorker is a slot's persistent background goroutine.  Write-back
// errors and durations are carried into the next prep reply (or the fin
// token at shutdown), mirroring the slot hand-over semantics: whoever
// waits for the slot learns the fate of its previous write-back.
func (f *File) slotWorker(s *pipeSlot) {
	var carry ioToken
	for r := range s.req {
		switch r.kind {
		case pipeWrite:
			bsp := f.tr.BeginIO(trace.PhaseWriteBack, r.lo, r.hi-r.lo)
			t0 := time.Now()
			_, err := f.sh.b.WriteAt(s.buf[:r.hi-r.lo], r.lo)
			bsp.End()
			carry.ns += time.Since(t0).Nanoseconds()
			if carry.err == nil {
				carry.err = err
			}
		case pipePrep:
			t := carry
			carry = ioToken{}
			if t.err == nil && r.read {
				rsp := f.tr.BeginIO(trace.PhasePreRead, r.lo, r.hi-r.lo)
				t0 := time.Now()
				err := storage.ReadFull(f.sh.b, s.buf[:r.hi-r.lo], r.lo)
				rsp.End()
				t.err = err
				t.ns += time.Since(t0).Nanoseconds()
			}
			s.done <- t
		}
	}
	s.fin <- carry
}

// pipeWindow describes one in-flight window (a value; the pipeline
// holds at most two).
type pipeWindow struct {
	lo, hi  int64
	iw      iopWindow
	slot    *pipeSlot
	covered bool // write: pre-read skipped
}

// iopPipelined is the double-buffered window loop.  Window k+1's prep
// request queues behind its slot's previous write-back (windows k+1 and
// k-1 share a slot), so at most two windows are ever in flight; the
// main goroutine does all exchange and copying and hands write-backs to
// the slot workers.
func (f *File) iopPipelined(iop iopState, domLo, domHi, winSize int64, write bool) error {
	var slots [2]*pipeSlot
	for i := range slots {
		s := &pipeSlot{
			buf:  f.bp.Get(int(winSize)),
			req:  make(chan pipeReq, 2),
			done: make(chan ioToken, 1),
			fin:  make(chan ioToken, 1),
		}
		slots[i] = s
		go f.slotWorker(s)
	}

	nextSlot := 0
	nextLo := domLo

	// mk prepares the next non-empty window, or ok=false when the
	// domain is exhausted.  Empty windows are skipped without consuming
	// a slot.  iop.window calls stay on the main goroutine, in order.
	mk := func() (pipeWindow, bool) {
		for nextLo < domHi {
			winLo := nextLo
			winHi := min(winLo+winSize, domHi)
			nextLo = winHi
			iw := iop.window(winLo, winHi)
			if iw.total() == 0 {
				iw.release()
				continue
			}
			pw := pipeWindow{lo: winLo, hi: winHi, iw: iw, slot: slots[nextSlot]}
			nextSlot = 1 - nextSlot
			if write && !f.opts.DisableMergeCheck {
				pw.covered = iw.covered()
			}
			pw.slot.req <- pipeReq{lo: winLo, hi: winHi, kind: pipePrep, read: !write || !pw.covered}
			return pw, true
		}
		return pipeWindow{}, false
	}

	var err error
	cur, ok := mk()
	for ok && err == nil {
		// Start window k+1's prep before touching window k: this is
		// the overlap.
		nxt, nok := mk()
		if nok {
			f.Stats.WindowsOverlapped++
			f.om.overlapped.Inc()
		}

		psp := f.tr.Begin(trace.PhasePipelineWait, cur.lo, 0)
		t := <-cur.slot.done
		psp.End()
		f.Stats.StorageNs += t.ns
		f.om.storageNs.Add(t.ns)
		if t.err != nil {
			// Unwind quiescently: consume nxt's prep reply if one was
			// issued (its slot's prior write-back folds into it), then
			// fall through to the shutdown drain below — no background
			// I/O may outlive this return, or it would race the next
			// collective on the file.
			err = t.err
			if nok {
				t2 := <-nxt.slot.done
				f.Stats.StorageNs += t2.ns
				f.om.storageNs.Add(t2.ns)
				nxt.iw.release()
			}
			cur.iw.release()
			break
		}

		w := cur.slot.buf[:cur.hi-cur.lo]
		wsp := f.tr.Begin(trace.PhaseWindow, cur.lo, cur.iw.total())
		if write {
			if cur.covered {
				f.Stats.PreReadsSkipped++
				f.om.preSkipped.Inc()
			}
			f.iopExchangeWrite(cur.iw, w, cur.lo)
			f.Stats.SieveWrites++
			f.om.sieveWrites.Inc()
			cur.slot.req <- pipeReq{lo: cur.lo, hi: cur.hi, kind: pipeWrite}
		} else {
			f.Stats.SieveReads++
			f.om.sieveReads.Inc()
			f.iopExchangeRead(cur.iw, w, cur.lo)
		}
		wsp.End()
		f.om.windows.Inc()
		cur.iw.release()
		cur, ok = nxt, nok
	}

	// Shut down: closing req makes each worker finish every queued
	// write-back, then report the trailing result and exit — the
	// pipeline is quiescent when fin has been consumed from both slots.
	for _, s := range slots {
		close(s.req)
	}
	for _, s := range slots {
		t := <-s.fin
		f.Stats.StorageNs += t.ns
		f.om.storageNs.Add(t.ns)
		if t.err != nil && err == nil {
			err = t.err
		}
		f.bp.Put(s.buf)
	}
	return err
}
