package core

import (
	"repro/internal/datatype"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Independent I/O.  The four memory/file contiguity combinations of
// Figure 1 take different paths:
//
//	c-c:   direct contiguous backend access;
//	nc-c:  stage through the pack buffer (pack/unpack the memtype);
//	c-nc:  data sieving on the fileview, user buffer used directly;
//	nc-nc: data sieving combined with pack-buffer staging (Figure 3).

// WriteAt writes count instances of memtype from buf into the view at
// offset off (in etypes), independently of other ranks.  It returns the
// number of data bytes written.
func (f *File) WriteAt(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil || d == 0 {
		return 0, err
	}
	if err := f.transferIndependent(off*f.v.esize, d, memtype, count, buf, true); err != nil {
		return 0, err
	}
	f.Stats.BytesWritten += d
	return d, nil
}

// ReadAt reads count instances of memtype from the view at offset off
// (in etypes) into buf, independently of other ranks.  It returns the
// number of data bytes read.
func (f *File) ReadAt(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil || d == 0 {
		return 0, err
	}
	if err := f.transferIndependent(off*f.v.esize, d, memtype, count, buf, false); err != nil {
		return 0, err
	}
	f.Stats.BytesRead += d
	return d, nil
}

// Write writes at the individual file pointer and advances it.
func (f *File) Write(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.WriteAt(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// Read reads at the individual file pointer and advances it.
func (f *File) Read(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.ReadAt(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// memIsContig reports whether the memory data of the access is one
// contiguous run.
func memIsContig(memtype *datatype.Type, count int64) bool {
	return memtype.ContiguousTiled() || (count == 1 && memtype.Dense())
}

// transferIndependent moves d data bytes between buf (count instances of
// memtype) and the view starting at view data offset d0.
func (f *File) transferIndependent(d0, d int64, memtype *datatype.Type, count int64, buf []byte, write bool) error {
	top := trace.PhaseIndRead
	if write {
		top = trace.PhaseIndWrite
	}
	sp := f.tr.Begin(top, d0, d)
	defer sp.End()

	mem := f.eng.newMemState(memtype, count)
	memContig := memIsContig(memtype, count)

	if f.atomic {
		// Atomic mode: hold the whole access range for the duration so
		// overlapping concurrent accesses serialize as units.
		lo := f.eng.dataToFileStart(d0)
		hi := f.eng.dataToFileEnd(d0 + d)
		unlock := f.sh.locks.Lock(lo, hi)
		defer unlock()
	}

	if f.v.ftype.ContiguousTiled() {
		start := f.eng.dataToFileStart(d0)
		if memContig {
			// c-c: direct contiguous access.
			m0 := memtype.TrueLB()
			if write {
				_, err := f.sh.b.WriteAt(buf[m0:m0+d], start)
				return err
			}
			return storage.ReadFull(f.sh.b, buf[m0:m0+d], start)
		}
		// nc-c: stage through the pack buffer.
		pb := f.bp.Get(int(min(int64(f.opts.PackBufSize), d)))
		defer f.bp.Put(pb)
		for done := int64(0); done < d; {
			n := min(int64(len(pb)), d-done)
			if write {
				f.eng.packUser(pb, buf, mem, done, n)
				if _, err := f.sh.b.WriteAt(pb[:n], start+done); err != nil {
					return err
				}
			} else {
				if err := storage.ReadFull(f.sh.b, pb[:n], start+done); err != nil {
					return err
				}
				f.eng.unpackUser(buf, pb, mem, done, n)
			}
			done += n
		}
		return nil
	}

	// Non-contiguous fileview: data sieving over the file range that
	// backs data [d0, d0+d).
	lo := f.eng.dataToFileStart(d0)
	hi := f.eng.dataToFileEnd(d0 + d)

	// Sieving-vs-direct decision (the paper's §5 outlook): when the
	// access is sparse, reading/writing whole sieve windows moves mostly
	// useless bytes and the RMW write-back doubles the traffic; below
	// the density threshold, issue one backend access per block instead.
	if f.opts.SieveDensity > 0 && float64(d) < f.opts.SieveDensity*float64(hi-lo) {
		return f.transferDirect(d0, d, buf, mem, memContig, write)
	}

	win := f.bp.Get(int(min(int64(f.opts.SieveBufSize), hi-lo)))
	defer f.bp.Put(win)
	var pb []byte
	if !memContig {
		pb = f.bp.Get(f.opts.PackBufSize)
		defer f.bp.Put(pb)
	}

	// The sequential fileview cursor: the list-based engine pays the
	// linear O(N_block) initial positioning of §2.2 and advances
	// per-tuple, the listless engine navigates in O(depth).
	vc := f.eng.seekData(d0)

	dw := d0 // view-data cursor
	for winLo := lo; winLo < hi; winLo += int64(len(win)) {
		winHi := min(winLo+int64(len(win)), hi)
		w := win[:winHi-winLo]

		// Data bytes inside this window.
		n := vc.countUpTo(winHi)
		if n == 0 {
			continue
		}
		if n > d-(dw-d0) {
			n = d - (dw - d0)
		}

		if write {
			ssp := f.tr.Begin(trace.PhaseSieveWrite, winLo, n)
			// In atomic mode the whole access range is already held
			// (and the lock table is not reentrant); otherwise lock the
			// window for the read-modify-write cycle.
			unlock := func() {}
			if !f.atomic {
				unlock = f.sh.locks.Lock(winLo, winHi)
			}
			if n != winHi-winLo {
				// Read-modify-write: fill the gaps from the file.
				if err := storage.ReadFull(f.sh.b, w, winLo); err != nil {
					unlock()
					ssp.End()
					return err
				}
			}
			if err := f.moveWindow(w, winLo, dw, n, buf, mem, memContig, d0, pb, true, vc); err != nil {
				unlock()
				ssp.End()
				return err
			}
			if _, err := f.sh.b.WriteAt(w, winLo); err != nil {
				unlock()
				ssp.End()
				return err
			}
			unlock()
			ssp.End()
			f.Stats.SieveWrites++
		} else {
			ssp := f.tr.Begin(trace.PhaseSieveRead, winLo, n)
			if err := storage.ReadFull(f.sh.b, w, winLo); err != nil {
				ssp.End()
				return err
			}
			f.Stats.SieveReads++
			if err := f.moveWindow(w, winLo, dw, n, buf, mem, memContig, d0, pb, false, vc); err != nil {
				ssp.End()
				return err
			}
			ssp.End()
		}
		dw += n
	}
	return nil
}

// moveWindow copies view data [dv, dv+n) between the file window w
// (holding absolute file range starting at winLo) and the user buffer,
// staging through pb when the memory layout is non-contiguous.
// write=true copies user→window.
func (f *File) moveWindow(w []byte, winLo, dv, n int64, buf []byte, mem *memState, memContig bool, d0 int64, pb []byte, write bool, vc viewCursor) error {
	chunk := n
	if !memContig && chunk > int64(len(pb)) {
		chunk = int64(len(pb))
	}
	for m := int64(0); m < n; m += chunk {
		c := min(chunk, n-m)
		var cb []byte
		if memContig {
			u := mem.t.TrueLB() + (dv - d0) + m
			cb = buf[u : u+c]
		} else {
			cb = pb[:c]
			if write {
				f.eng.packUser(cb, buf, mem, (dv-d0)+m, c)
			}
		}
		// Copy between contiguous cb and the window per the fileview.
		vc.copyWindow(cb, w, c, winLo, write)
		if !memContig && !write {
			f.eng.unpackUser(buf, cb, mem, (dv-d0)+m, c)
		}
	}
	return nil
}

// transferDirect performs a non-contiguous independent access as direct
// contiguous backend accesses, one per run of the fileview — the
// "multiple file accesses" alternative to data sieving.  No
// read-modify-write and no byte-range locks are needed because every
// backend access touches exactly the bytes of the view.
//
// By default the runs of each pack-buffer chunk are gathered into one
// vectored batch (one preadv/pwritev-style backend call per chunk
// instead of one per run); Options.DisableVectored restores the
// per-run loop.  Stats counts both: DirectReads/DirectWrites are the
// logical runs, VectoredReads/VectoredWrites the batched calls.
func (f *File) transferDirect(d0, d int64, buf []byte, mem *memState, memContig bool, write bool) error {
	var pb []byte
	if !memContig {
		pb = f.bp.Get(int(min(int64(f.opts.PackBufSize), d)))
		defer f.bp.Put(pb)
	}
	// Process the access in data-contiguous chunks bounded by the pack
	// buffer.
	chunk := d
	if !memContig && chunk > int64(len(pb)) {
		chunk = int64(len(pb))
	}

	var vc viewCursor
	if f.viewBE == nil {
		// The view-addressed path needs no local fileview walk at all;
		// only the offset-list path enumerates runs.
		vc = f.eng.seekData(d0)
	}

	var segs []storage.Segment // reused across chunks
	var ioErr error
	for m := int64(0); m < d && ioErr == nil; m += chunk {
		c := min(chunk, d-m)
		var cb []byte
		if memContig {
			u := mem.t.TrueLB() + m
			cb = buf[u : u+c]
		} else {
			cb = pb[:c]
			if write {
				f.eng.packUser(cb, buf, mem, m, c)
			}
		}
		if f.viewBE != nil {
			// View-addressed transfer: the chunk is one constant-size
			// (handle, offset, count) request; the backend (a remote
			// I/O-server tier) evaluates the noncontiguous pattern on
			// its side.
			if write {
				ioErr = f.viewBE.ViewWrite(f.viewHandle, cb, d0+m)
				f.Stats.ViewWrites++
			} else {
				ioErr = f.viewBE.ViewRead(f.viewHandle, cb, d0+m)
				f.Stats.ViewReads++
			}
			if ioErr == nil && !memContig && !write {
				f.eng.unpackUser(buf, cb, mem, m, c)
			}
			continue
		}
		segs = segs[:0]
		vc.eachRun(c, func(fileOff, dataOff, ln int64) {
			if ioErr != nil {
				return
			}
			piece := cb[dataOff-(d0+m) : dataOff-(d0+m)+ln]
			if write {
				f.Stats.DirectWrites++
			} else {
				f.Stats.DirectReads++
			}
			if !f.opts.DisableVectored {
				segs = append(segs, storage.Segment{Off: fileOff, Buf: piece})
				return
			}
			if write {
				_, ioErr = f.sh.b.WriteAt(piece, fileOff)
			} else {
				ioErr = storage.ReadFull(f.sh.b, piece, fileOff)
			}
		})
		if ioErr == nil && len(segs) > 0 {
			if write {
				ioErr = storage.WriteAtv(f.sh.b, segs)
				f.Stats.VectoredWrites++
			} else {
				ioErr = storage.ReadAtv(f.sh.b, segs)
				f.Stats.VectoredReads++
			}
		}
		if ioErr == nil && !memContig && !write {
			f.eng.unpackUser(buf, cb, mem, m, c)
		}
	}
	return ioErr
}
