package core

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datatype"
	"repro/internal/fotf"
)

// The compiled-program memo cache.  A fileview's copy program depends
// only on the filetype tree, so programs are memoized process-wide and
// keyed by the same compact tree encoding that SetView registers with a
// view-capable backend (the server-side view registration payload minus
// its displacement prefix).  Handles never invalidate entries directly:
// SetView replaces the handle's program pointers, and the cache itself
// ages stale encodings out through its LRU cap — a re-register of a
// recent view (the common BTIO pattern of alternating views) is a hit,
// while a churn of distinct views evicts and recompiles.
const programCacheCap = 64

// progEntry is one memoized compile result.  prog may be nil: a type
// that declines compilation (no data, or beyond the compile limits) is
// cached too, so the decline is not re-derived on every SetView.
type progEntry struct {
	key  string
	prog *fotf.Program
}

// programCache is an LRU map from encoded datatype trees to compiled
// programs, with counters for the obs plane.
type programCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used; values are *progEntry

	hits      atomic.Int64
	compiles  atomic.Int64
	evictions atomic.Int64
	compileNs atomic.Int64
}

func newProgramCache(capacity int) *programCache {
	return &programCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// programs is the process-wide cache; every File handle shares it, so
// the P ranks of an in-process world compile each exchanged fileview
// once, not P times.
var programs = newProgramCache(programCacheCap)

// lookup returns the memoized program for t (which may be nil when t
// declines compilation), compiling on miss.  enc is the compact tree
// encoding used as the key; pass nil to derive it from t.
func (pc *programCache) lookup(enc []byte, t *datatype.Type) (prog *fotf.Program, hit bool) {
	if enc == nil {
		enc = datatype.Encode(t)
	}
	key := string(enc)
	pc.mu.Lock()
	if el, ok := pc.m[key]; ok {
		pc.lru.MoveToFront(el)
		p := el.Value.(*progEntry).prog
		pc.mu.Unlock()
		pc.hits.Add(1)
		return p, true
	}
	pc.mu.Unlock()

	// Compile outside the lock: concurrent ranks of one world may race
	// to compile the same view, and the first result in wins.
	t0 := time.Now()
	p := fotf.Compile(t)
	pc.compileNs.Add(time.Since(t0).Nanoseconds())
	pc.compiles.Add(1)

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.m[key]; ok {
		pc.lru.MoveToFront(el)
		return el.Value.(*progEntry).prog, false
	}
	pc.m[key] = pc.lru.PushFront(&progEntry{key: key, prog: p})
	for pc.lru.Len() > pc.cap {
		old := pc.lru.Back()
		pc.lru.Remove(old)
		delete(pc.m, old.Value.(*progEntry).key)
		pc.evictions.Add(1)
	}
	return p, false
}

// size reports the resident entry count (for the obs gauge).
func (pc *programCache) size() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return int64(pc.lru.Len())
}

// lookupProgram is the handle-side entry point: it memoizes the
// compiled program for t, accounting the hit or compile on this
// handle's Stats and metrics.  It returns nil — and the caller falls
// back to the recursive walk — when programs are disabled by the
// ablation, when t is contiguous-tiled (a single memmove needs no
// program), or when t declines compilation.
func (f *File) lookupProgram(enc []byte, t *datatype.Type) *fotf.Program {
	if f.opts.DisableProgram || t == nil || t.ContiguousTiled() {
		return nil
	}
	p, hit := programs.lookup(enc, t)
	if hit {
		f.Stats.ProgramCacheHits++
		f.om.progHits.Inc()
	} else {
		f.Stats.ProgramCompiles++
		f.om.progCompiles.Inc()
	}
	return p
}
