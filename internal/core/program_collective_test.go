package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// progCase is one cell of the program differential matrix.
type progCase struct {
	engine  Engine
	tcp     bool
	program bool
}

func (c progCase) String() string {
	tr, mode := "loopback", "no-program"
	if c.tcp {
		tr = "tcp"
	}
	if c.program {
		mode = "program"
	}
	return fmt.Sprintf("%s/%s/%s", c.engine, tr, mode)
}

// TestQuickProgramCollective extends the random-tree differential
// matrix with the compiled-program axis: seeded random datatype trees
// drive a 4-rank collective write + read-back across {engine} ×
// {loopback, TCP} × {program, -no-program}, and every cell's file must
// match, byte for byte, the flat Walk oracle — so the program and walk
// stacks are proven byte-identical end to end, over real exchange and
// storage.  Program cells assert the memo cache was actually consulted,
// ablation cells that it was not; every world runs under a Checked pool
// and a goroutine/fd leak check.
func TestQuickProgramCollective(t *testing.T) {
	const P = 4
	seeds := []int64{1, 2, 3, 5, 8, 13}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cells := []progCase{}
	for _, eng := range []Engine{Listless, ListBased} {
		for _, tcp := range []bool{false, true} {
			for _, program := range []bool{true, false} {
				cells = append(cells, progCase{engine: eng, tcp: tcp, program: program})
			}
		}
	}
	fd0 := testutil.FDCount(t)
	for _, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		base := datatype.RandomFiletype(r, 3)
		stride := base.Extent()
		d := 2*base.Size() + 1 + r.Int63n(base.Size())
		data := make([][]byte, P)
		for rank := 0; rank < P; rank++ {
			data[rank] = pattern(rank*11+int(seed), d)
		}
		want := diffOracle(base, P, stride, d, data)

		for _, c := range cells {
			checkLeaks := testutil.LeakCheck(t)
			be := storage.NewMem()
			sh := NewShared(be)
			opts := Options{
				Engine:         c.engine,
				CollBufSize:    64 + r.Intn(256),
				Pool:           pool.NewChecked(),
				DisableProgram: !c.program,
			}
			var eps []transport.Transport
			if c.tcp {
				var err error
				eps, err = transport.NewLocalTCPWorld(P, transport.TCPConfig{})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				eps = transport.NewLoopback(P)
			}
			var progLookups atomic.Int64
			_, err := mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
				f, err := Open(p, sh, opts)
				if err != nil {
					panic(err)
				}
				defer f.Close()
				st, err := datatype.Struct([]int64{1}, []int64{int64(p.Rank()) * stride}, []*datatype.Type{base})
				if err != nil {
					panic(err)
				}
				view, err := datatype.Resized(st, 0, int64(P)*stride)
				if err != nil {
					panic(err)
				}
				if err := f.SetView(0, datatype.Byte, view); err != nil {
					panic(err)
				}
				if _, err := f.WriteAtAll(0, d, datatype.Byte, data[p.Rank()]); err != nil {
					panic(err)
				}
				got := make([]byte, d)
				if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data[p.Rank()]) {
					panic(fmt.Sprintf("rank %d: read-back mismatch", p.Rank()))
				}
				progLookups.Add(f.Stats.ProgramCompiles + f.Stats.ProgramCacheHits)
			})
			if err != nil {
				t.Fatalf("seed %d cell %s (base %s): %v", seed, c, base, err)
			}
			if c.program && c.engine == Listless && progLookups.Load() == 0 {
				t.Errorf("seed %d cell %s: no program lookups despite programs enabled", seed, c)
			}
			if !c.program && progLookups.Load() != 0 {
				t.Errorf("seed %d cell %s: %d program lookups despite the ablation", seed, c, progLookups.Load())
			}
			got := be.Bytes()
			n := min(len(got), len(want))
			if !bytes.Equal(got[:n], want[:n]) || !allZero(got[n:]) || !allZero(want[n:]) {
				t.Fatalf("seed %d cell %s (base %s, stride %d, d %d): file differs from oracle (%d vs %d bytes)",
					seed, c, base, stride, d, len(got), len(want))
			}
			checkLeaks()
		}
	}
	if fd0 >= 0 {
		if fd1 := testutil.FDCount(t); fd1 > fd0 {
			t.Errorf("fd leak: %d before, %d after", fd0, fd1)
		}
	}
}

// TestProgramMemtypeRoundTrip drives a non-contiguous memtype — the
// path where the memory-side program replaces PackCount / the flatten
// list scan on both engines — and requires program and ablation runs to
// produce identical files and read-backs, independently and
// collectively.
func TestProgramMemtypeRoundTrip(t *testing.T) {
	const P = 2
	r := rand.New(rand.NewSource(9))
	for _, collective := range []bool{false, true} {
		for _, eng := range []Engine{Listless, ListBased} {
			var files [2][]byte
			for pi, program := range []bool{true, false} {
				be := storage.NewMem()
				sh := NewShared(be)
				opts := Options{
					Engine:         eng,
					CollBufSize:    128,
					SieveBufSize:   96,
					PackBufSize:    64,
					DisableProgram: !program,
				}
				_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
					f, err := Open(p, sh, opts)
					if err != nil {
						panic(err)
					}
					defer f.Close()
					ft := noncontigTypeP(p.Rank(), P, 16, 8)
					if err := f.SetView(0, datatype.Byte, ft); err != nil {
						panic(err)
					}
					// Holey memtype: 8-byte elements every 16 bytes.
					elem, err := datatype.Resized(datatype.Double, 0, 16)
					if err != nil {
						panic(err)
					}
					const count = 16
					d := count * elem.Size()
					buf := make([]byte, count*elem.Extent())
					rand.New(rand.NewSource(int64(p.Rank()))).Read(buf)
					var werr error
					if collective {
						_, werr = f.WriteAtAll(0, count, elem, buf)
					} else {
						_, werr = f.WriteAt(0, count, elem, buf)
					}
					if werr != nil {
						panic(werr)
					}
					got := make([]byte, len(buf))
					var rerr error
					if collective {
						_, rerr = f.ReadAtAll(0, count, elem, got)
					} else {
						_, rerr = f.ReadAt(0, count, elem, got)
					}
					if rerr != nil {
						panic(rerr)
					}
					// Compare only the data bytes: the holes of got were
					// never written.
					for i := int64(0); i < d/8; i++ {
						a := buf[i*16 : i*16+8]
						b := got[i*16 : i*16+8]
						if !bytes.Equal(a, b) {
							panic(fmt.Sprintf("rank %d element %d differs", p.Rank(), i))
						}
					}
					if program && f.Stats.ProgramCompiles+f.Stats.ProgramCacheHits == 0 {
						panic("no program lookups for a non-contiguous memtype")
					}
				})
				if err != nil {
					t.Fatalf("engine %v collective %v program %v: %v", eng, collective, program, err)
				}
				files[pi] = be.Bytes()
				_ = r
			}
			if !bytes.Equal(files[0], files[1]) {
				t.Fatalf("engine %v collective %v: program and ablation files differ", eng, collective)
			}
		}
	}
}
