package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// Transport-matrix tests: the same 4-rank collective I/O must behave
// identically whether ranks exchange through the in-process loopback or
// over real TCP sockets — byte-identical file contents, same fault
// agreement, and no goroutine or file-descriptor leaks.

// runCollectiveOver runs the standard 4-rank non-contiguous collective
// write + read-back over the given endpoints and returns the file bytes.
func runCollectiveOver(t *testing.T, eng Engine, eps []transport.Transport) []byte {
	t.Helper()
	const P = 4
	const blockcount, blocklen = 16, 8
	d := int64(blockcount * blocklen)
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
			panic(err)
		}
		data := pattern(p.Rank(), d)
		if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, d)
		if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic(fmt.Sprintf("rank %d: collective read-back mismatch", p.Rank()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return be.Bytes()
}

// TestTransportMatrixByteIdentical is the acceptance criterion: for both
// engines, the same collective write produces byte-identical file
// contents over the in-process loopback and over TCP.
func TestTransportMatrixByteIdentical(t *testing.T) {
	for _, eng := range []Engine{ListBased, Listless} {
		t.Run(eng.String(), func(t *testing.T) {
			defer testutil.LeakCheck(t)()
			fdBefore := testutil.FDCount(t)

			loop := runCollectiveOver(t, eng, transport.NewLoopback(4))
			eps, err := transport.NewLocalTCPWorld(4, transport.TCPConfig{})
			if err != nil {
				t.Fatal(err)
			}
			tcp := runCollectiveOver(t, eng, eps)

			if len(loop) == 0 {
				t.Fatal("empty file from loopback run")
			}
			if !bytes.Equal(loop, tcp) {
				t.Fatalf("file contents differ between transports (%d vs %d bytes)", len(loop), len(tcp))
			}
			if fdBefore >= 0 {
				if fdAfter := testutil.FDCount(t); fdAfter > fdBefore {
					t.Errorf("fd leak: %d before, %d after", fdBefore, fdAfter)
				}
			}
		})
	}
}

// TestFaultAgreementOverTCP mirrors TestFaultCollectiveWrite with the
// exchange on real sockets: error agreement is pure messages, so the
// agreed CollectiveError must survive the wire unchanged.
func TestFaultAgreementOverTCP(t *testing.T) {
	const P = 4
	for _, eng := range []Engine{Listless, ListBased} {
		t.Run(eng.String(), func(t *testing.T) {
			defer testutil.LeakCheck(t)()
			eps, err := transport.NewLocalTCPWorld(P, transport.TCPConfig{})
			if err != nil {
				t.Fatal(err)
			}
			fb := storage.NewFaulty(storage.NewMem())
			sh := NewShared(fb)
			errs := make([]error, P)
			_, err = mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
				f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128})
				if err != nil {
					panic(err)
				}
				defer f.Close()
				ft := noncontigTypeP(p.Rank(), P, 16, 8)
				if err := f.SetView(0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				if p.Rank() == 0 {
					fb.FailWrites(1)
				}
				p.Barrier()
				_, errs[p.Rank()] = f.WriteAtAll(0, 128, datatype.Byte, make([]byte, 128))
			})
			if err != nil {
				t.Fatalf("world error: %v", err)
			}
			requireAgreement(t, "tcp/"+eng.String(), errs, 0, PhaseIOPWindow)
		})
	}
}

// TestTransportSharedFileRanks models the -net process arrangement
// in-process: every rank holds its own OpenFileShared handle on one
// file (its own Shared state), exchanges over TCP, and the collective
// write still lands byte-identically because IOP file domains are
// disjoint.
func TestTransportSharedFileRanks(t *testing.T) {
	const P = 4
	const blockcount, blocklen = 16, 8
	d := int64(blockcount * blocklen)
	for _, eng := range []Engine{ListBased, Listless} {
		t.Run(eng.String(), func(t *testing.T) {
			defer testutil.LeakCheck(t)()
			oracle := collOracle(t, eng, true, P, blockcount, blocklen)

			path := filepath.Join(t.TempDir(), "shared.dat")
			eps, err := transport.NewLocalTCPWorld(P, transport.TCPConfig{})
			if err != nil {
				t.Fatal(err)
			}
			_, err = mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
				fb, err := storage.OpenFileShared(path)
				if err != nil {
					panic(err)
				}
				defer fb.Close()
				f, err := Open(p, NewShared(fb), Options{Engine: eng, CollBufSize: 128})
				if err != nil {
					panic(err)
				}
				defer f.Close()
				if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
					panic(err)
				}
				if _, err := f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d)); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, oracle) {
				t.Fatalf("shared-file contents differ from oracle (%d vs %d bytes)", len(got), len(oracle))
			}
		})
	}
}
