package core

import "repro/internal/datatype"

// Nonblocking and split-collective operations (MPI-IO §9.4.3, §9.4.5).
//
// Independent nonblocking operations (IReadAt / IWriteAt) overlap I/O
// with computation: the transfer runs in the background and Wait joins
// it.  Independent transfers never touch the message-passing runtime, so
// any other use of the rank is safe while one is in flight (only the
// buffer must not be reused until Wait).  At most one operation may be
// outstanding per file handle — the handle's Stats are not synchronized.
//
// Split collectives (ReadAtAllBegin/End, WriteAtAllBegin/End) start a
// collective transfer in the background.  Because the collective engages
// the rank's mailbox, the caller must not perform *any* other
// communication or file operation on the same rank between Begin and
// End (MPI imposes the same one-outstanding-split-collective rule per
// file handle; we extend it to the rank for the shared-memory runtime).

// Request is a handle on an in-flight nonblocking operation.
type Request struct {
	done chan struct{}
	n    int64
	err  error
}

// Wait blocks until the operation completes and returns its result.
func (r *Request) Wait() (int64, error) {
	<-r.done
	return r.n, r.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

func (f *File) async(op func() (int64, error)) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		defer func() {
			if e := recover(); e != nil {
				r.err = recoverToError(e)
			}
		}()
		r.n, r.err = op()
	}()
	return r
}

func recoverToError(e interface{}) error {
	if err, ok := e.(error); ok {
		return err
	}
	return errPanic{v: e}
}

type errPanic struct{ v interface{} }

func (e errPanic) Error() string { return "core: background operation panicked" }

// IWriteAt starts a nonblocking independent write (MPI_File_iwrite_at).
// buf must not be modified until Wait returns.
func (f *File) IWriteAt(off int64, count int64, memtype *datatype.Type, buf []byte) *Request {
	return f.async(func() (int64, error) { return f.WriteAt(off, count, memtype, buf) })
}

// IReadAt starts a nonblocking independent read (MPI_File_iread_at).
// buf must not be read until Wait returns.
func (f *File) IReadAt(off int64, count int64, memtype *datatype.Type, buf []byte) *Request {
	return f.async(func() (int64, error) { return f.ReadAt(off, count, memtype, buf) })
}

// WriteAtAllBegin starts a split collective write
// (MPI_File_write_at_all_begin).  All ranks must call it; no other
// operation may be performed on this rank until End.
func (f *File) WriteAtAllBegin(off int64, count int64, memtype *datatype.Type, buf []byte) *Request {
	return f.async(func() (int64, error) { return f.WriteAtAll(off, count, memtype, buf) })
}

// ReadAtAllBegin starts a split collective read
// (MPI_File_read_at_all_begin).
func (f *File) ReadAtAllBegin(off int64, count int64, memtype *datatype.Type, buf []byte) *Request {
	return f.async(func() (int64, error) { return f.ReadAtAll(off, count, memtype, buf) })
}
