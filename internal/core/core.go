// Package core implements the MPI-IO layer of the reproduction: files
// with fileviews (displacement + etype + filetype), independent and
// collective read/write of possibly non-contiguous data, data sieving and
// two-phase collective I/O — with two interchangeable datatype engines
// behind the accessEngine interface (engine.go):
//
//   - ListBased: the ROMIO-style baseline.  Filetypes and memtypes are
//     explicitly flattened into ol-lists of ⟨offset,length⟩ tuples;
//     positioning traverses the lists linearly; copies are performed per
//     tuple; every collective access makes each access process (AP) build
//     and transmit an ol-list of its accesses for each I/O process (IOP)
//     whose file domain it touches (paper §2).  See engine_list.go.
//
//   - Listless: the paper's contribution (§3).  No ol-lists exist:
//     pack/unpack and positioning use flattening-on-the-fly
//     (internal/fotf); each process's fileview is exchanged once, as a
//     compact encoded tree, when the view is set (fileview caching); and
//     collective writes skip the read-modify-write pre-read when the
//     combined fileviews cover the written range (the mergeview
//     optimization).  See engine_listless.go.
//
// Both engines produce byte-identical files; only their cost profiles
// differ.  Per-file Stats expose the differences (tuples built, list
// bytes exchanged, pre-reads skipped, per-phase times, ...).
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Engine selects the datatype-handling implementation.
type Engine int

// The two engines.
const (
	Listless  Engine = iota // flattening-on-the-fly (the paper's technique)
	ListBased               // explicit ol-lists (ROMIO-style baseline)
)

func (e Engine) String() string {
	if e == ListBased {
		return "list-based"
	}
	return "listless"
}

// ErrCorruptAccessList is wrapped by errors returned when a received
// collective access-list payload is truncated or malformed.
var ErrCorruptAccessList = errors.New("core: corrupt access list")

// Options configure an open file.
type Options struct {
	// Engine selects list-based or listless datatype handling.
	Engine Engine
	// SieveBufSize is the file-buffer size for independent data sieving.
	SieveBufSize int
	// PackBufSize is the intermediate pack-buffer size (Figure 3's p).
	PackBufSize int
	// CollBufSize is the per-window file-buffer size of two-phase
	// collective I/O.
	CollBufSize int
	// IONodes is the number of I/O processes (aggregators) for
	// collective access; 0 means every process is an IOP.
	IONodes int
	// DisableViewCache makes the listless engine re-send the encoded
	// fileview on every collective access instead of once per SetView
	// (ablation of fileview caching).
	DisableViewCache bool
	// DisableMergeCheck makes collective writes always pre-read file
	// windows, even when fully covered (ablation of the mergeview
	// write optimization).
	DisableMergeCheck bool
	// DisableCollPipeline makes the IOP window loop run strictly
	// sequentially — window k's storage I/O, AP exchange, and
	// pack/unpack finish before window k+1 starts — instead of the
	// default double-buffered pipeline that overlaps window k+1's
	// pre-read and window k-1's write-back with window k's exchange
	// (ablation of window pipelining).
	DisableCollPipeline bool
	// DisablePool makes every hot-path buffer (collective window double
	// buffers, exchange chunks, sieve and pack buffers) a fresh
	// allocation instead of drawing on the shared buffer pool (ablation
	// of buffer pooling; the steady-state loop is allocation-free with
	// pooling on).
	DisablePool bool
	// Pool, when non-nil, overrides the shared pool.Global as the buffer
	// source — tests install a pool.NewChecked() here to catch
	// double-put and use-after-put.  Ignored when DisablePool is set.
	Pool *pool.Pool
	// DisableVectored makes the sparse direct-access path issue one
	// backend call per contiguous fileview run instead of batching each
	// pack-buffer chunk into a single vectored ReadAtv/WriteAtv
	// (ablation of scatter/gather I/O).
	DisableVectored bool
	// DisableViewPath makes the sparse direct-access path ship offset
	// lists even when the backend accepts registered views (ablation of
	// server-side datatype evaluation: the remote I/O-server tier then
	// behaves like a plain striped store).
	DisableViewPath bool
	// DisableEpochs makes collective writes apply directly even when the
	// backend supports the epoch commit protocol (crash consistency off:
	// a server crash mid-collective may leave torn multi-stripe state).
	DisableEpochs bool
	// DisableProgram makes every pack/unpack hot path use the recursive
	// flattening-on-the-fly walk (or, on the list-based engine, the
	// per-tuple list scan) instead of the compiled flat copy program
	// (ablation of datatype compilation; programs and the walk are
	// byte-identical by the differential test layer).
	DisableProgram bool
	// SieveDensity is the paper's §5 outlook item, "the decision on the
	// trade-off between data sieving and multiple file accesses":
	// independent non-contiguous accesses whose useful-data fraction in
	// the accessed file range falls below this threshold are performed
	// as one direct backend access per contiguous block instead of via
	// sieve-buffer read-modify-write.  0 disables the heuristic (always
	// sieve, ROMIO's default behaviour).
	SieveDensity float64
	// Trace, when non-nil, records per-rank spans of every access phase
	// (plan, exchange, window storage I/O, copies) into the collector;
	// nil disables tracing at the cost of one pointer check per site.
	Trace *trace.Collector
	// Metrics, when non-nil, registers this file's live counters (per
	// phase, window, and epoch) on the registry for the /metrics scrape
	// plane; nil disables them at the cost of one nil check per site.
	Metrics *obs.Registry
	// Gate, when non-nil, makes every collective a schedulable job:
	// rank 0 acquires a slot before any staging or exchange traffic and
	// broadcasts the decision (see gate.go).  The session service wires
	// its shared worker pool in here; nil admits unconditionally.
	Gate Gate
}

func (o *Options) fill() {
	if o.SieveBufSize <= 0 {
		o.SieveBufSize = 512 << 10
	}
	if o.PackBufSize <= 0 {
		o.PackBufSize = 256 << 10
	}
	if o.CollBufSize <= 0 {
		o.CollBufSize = 1 << 20
	}
}

// Stats counts the work a file handle performed, separating the
// overheads the paper attributes to list-based I/O.
type Stats struct {
	// ListTuples is the number of ol-list tuples built (flattening,
	// per-access memtype lists, per-IOP access lists, window sub-lists).
	ListTuples int64
	// ListBytesSent is the ol-list exchange volume of collective
	// accesses (16 bytes per tuple).
	ListBytesSent int64
	// ViewBytesSent is the compact-fileview exchange volume of the
	// listless engine (once per SetView, or per access when caching is
	// disabled).
	ViewBytesSent int64
	// SieveReads / SieveWrites count file-buffer windows processed.
	SieveReads, SieveWrites int64
	// PreReadsSkipped counts collective write windows whose pre-read
	// was skipped because the combined fileviews covered them.
	PreReadsSkipped int64
	// DirectReads / DirectWrites count per-block direct backend
	// accesses taken by the sparse-access heuristic (SieveDensity).
	// With vectored I/O enabled they still count logical per-run
	// accesses; VectoredReads / VectoredWrites count the batched
	// backend calls that actually carried them.
	DirectReads, DirectWrites int64
	// VectoredReads / VectoredWrites count ReadAtv/WriteAtv batches
	// issued by the direct-access path.
	VectoredReads, VectoredWrites int64
	// ViewRegistrations counts fileviews registered with a
	// view-capable backend (the remote I/O-server tier); ViewReads /
	// ViewWrites count the view-addressed transfers that replaced
	// offset lists on the direct path.
	ViewRegistrations, ViewReads, ViewWrites int64
	// BytesRead / BytesWritten are user-data volumes moved.
	BytesRead, BytesWritten int64

	// Per-phase collective timing, in nanoseconds, separating where
	// two-phase time goes on this rank: ExchangeNs is AP↔IOP data
	// send/receive, StorageNs is backend window I/O (pre-reads and
	// write-backs, whether sequential or overlapped), CopyNs is
	// pack/unpack and window copying.
	ExchangeNs, StorageNs, CopyNs int64
	// WindowsOverlapped counts collective windows whose storage I/O
	// (pre-read or write-back) proceeded concurrently with the exchange
	// or copy work of a neighboring window in the pipelined window
	// loop.
	WindowsOverlapped int64

	// EpochsCommitted counts collective writes committed through the
	// epoch crash-consistency protocol; EpochRetries counts seal or
	// commit rounds that were retried after a server bounce.
	EpochsCommitted, EpochRetries int64

	// ProgramCompiles counts datatype copy programs this handle had to
	// compile (process-wide memo-cache misses); ProgramCacheHits counts
	// lookups satisfied by the cache.
	ProgramCompiles, ProgramCacheHits int64
}

// Shared is the per-world state of one file: the storage backend plus
// the byte-range lock table used by independent data-sieving writes.
// Every rank passes the same *Shared to Open.
type Shared struct {
	b     storage.Backend
	locks *storage.LockTable

	spMu sync.Mutex
	sp   int64 // shared file pointer, in etypes

	// epochMu/epochHi track the highest epoch id any handle on this
	// world has used, so sequentially opened handles never reuse ids
	// (uncommitted leftovers of a dead handle must not alias a live
	// epoch).
	epochMu sync.Mutex
	epochHi uint64
}

// NewShared wraps a backend for opening from multiple ranks.
func NewShared(b storage.Backend) *Shared {
	return &Shared{b: b, locks: storage.NewLockTable()}
}

// Backend returns the underlying storage backend.
func (s *Shared) Backend() storage.Backend { return s.b }

// epochMark reports the current epoch high-water mark, the base a newly
// opened handle allocates its epoch ids above.  Every rank opens handles
// in the same order, so the marks agree across the world.
func (s *Shared) epochMark() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epochHi
}

// noteEpoch raises the epoch high-water mark.
func (s *Shared) noteEpoch(id uint64) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if id > s.epochHi {
		s.epochHi = id
	}
}

// view is one process's fileview in engine-neutral form; the engines
// keep their own representations (ol-list view, cached remote views).
type view struct {
	disp  int64
	etype *datatype.Type
	ftype *datatype.Type

	esize int64
	fsize int64 // data bytes per filetype instance
	fext  int64 // filetype extent
}

// File is one rank's handle on a shared file.  All collective methods
// (Open, SetView, ReadAtAll, WriteAtAll, Close) must be called by every
// rank of the world in the same order.
type File struct {
	p    *mpi.Proc
	sh   *Shared
	opts Options
	tr   *trace.Tracer // this rank's span recorder; nil when tracing is off
	bp   *pool.Pool    // buffer pool; nil (allocate-always) when DisablePool

	v   view
	eng accessEngine

	// viewBE/viewHandle are set when the backend accepts registered
	// views and the current fileview is registered with it; the sparse
	// direct path then addresses accesses in view-data bytes instead of
	// shipping offset lists.
	viewBE     storage.ViewBackend
	viewHandle storage.ViewHandle

	// epochBE is set when the backend supports the epoch commit protocol
	// and epochs are enabled: collective writes then stage under an epoch
	// id and commit via epochFinish.  Ids run from epochBase (the world's
	// high-water mark at Open) in lockstep across ranks.
	epochBE   storage.EpochBackend
	epochBase uint64
	epochSeq  uint64

	ptr    int64 // individual file pointer, in etypes
	atomic bool  // MPI-IO atomic mode: whole-access locking

	// Stats accumulates the work counters of this handle.
	Stats Stats
	// om holds this handle's live metric handles (all nil with
	// Options.Metrics unset — every site no-ops through the nil
	// receivers).
	om fileMetrics
}

// Open opens the shared backend collectively and installs the trivial
// byte view (disp 0, etype and filetype Byte).
func Open(p *mpi.Proc, sh *Shared, opts Options) (*File, error) {
	opts.fill()
	if opts.IONodes < 0 || opts.IONodes > p.Size() {
		return nil, fmt.Errorf("core: IONodes %d out of range [0,%d]", opts.IONodes, p.Size())
	}
	f := &File{
		p:    p,
		sh:   sh,
		opts: opts,
		tr:   opts.Trace.Tracer(p.Rank()),
		om:   newFileMetrics(opts.Metrics),
	}
	registerProgramCacheMetrics(opts.Metrics)
	if !opts.DisablePool {
		if opts.Pool != nil {
			f.bp = opts.Pool
		} else {
			f.bp = pool.Global
		}
	}
	if !opts.DisableEpochs {
		if eb, ok := storage.AsEpochBackend(sh.b); ok {
			f.epochBE = eb
			f.epochBase = sh.epochMark()
		}
	}
	f.eng = newEngine(f)
	if err := f.SetView(0, datatype.Byte, datatype.Byte); err != nil {
		return nil, err
	}
	return f, nil
}

// Close releases the handle collectively and flushes the backend.
func (f *File) Close() error {
	f.p.Barrier()
	if f.p.Rank() == 0 {
		return f.sh.b.Sync()
	}
	return nil
}

// Engine reports the engine this handle uses.
func (f *File) Engine() Engine { return f.opts.Engine }

// Proc returns the rank handle the file was opened with.
func (f *File) Proc() *mpi.Proc { return f.p }

// reserved collective tags (below mpi's internal space).
const (
	tagCollList = 1<<20 + 1
	tagCollData = 1<<20 + 2
)

// SetView installs a new fileview collectively: the file appears as the
// data of filetype tiled from byte displacement disp, addressed in units
// of etype.  The individual file pointer is reset to zero.
func (f *File) SetView(disp int64, etype, filetype *datatype.Type) error {
	if disp < 0 {
		return fmt.Errorf("core: negative displacement %d", disp)
	}
	if err := datatype.ValidateFiletype(etype, filetype); err != nil {
		return err
	}
	f.v = view{
		disp:  disp,
		etype: etype,
		ftype: filetype,
		esize: etype.Size(),
		fsize: filetype.Size(),
		fext:  filetype.Extent(),
	}
	f.ptr = 0
	f.viewBE, f.viewHandle = nil, 0
	if vb, ok := storage.AsViewBackend(f.sh.b); ok && !f.opts.DisableViewPath && !filetype.ContiguousTiled() {
		// Register the fileview with the backend once per SetView — the
		// storage-tier analogue of the engine's fileview caching.  The
		// backend deduplicates repeats of the same encoding, so this is
		// cheap for the common re-register.
		h, err := vb.RegisterView(disp, filetype)
		if err != nil {
			return err
		}
		f.viewBE, f.viewHandle = vb, h
		f.Stats.ViewRegistrations++
	}
	return f.eng.setView()
}

// SetAtomicity enables or disables MPI-IO atomic mode collectively
// (MPI_File_set_atomicity).  In atomic mode every independent access
// locks its whole file range, so concurrent overlapping writes serialize
// as indivisible units instead of interleaving at sieve-window
// granularity.
func (f *File) SetAtomicity(enable bool) {
	f.p.Barrier()
	f.atomic = enable
	f.p.Barrier()
}

// Atomicity reports whether atomic mode is enabled
// (MPI_File_get_atomicity).
func (f *File) Atomicity() bool { return f.atomic }

// SeekTo sets the individual file pointer, in etype units.
func (f *File) SeekTo(offset int64) { f.ptr = offset }

// Tell reports the individual file pointer, in etype units.
func (f *File) Tell() int64 { return f.ptr }

// checkAccess validates an access and returns the number of data bytes.
func (f *File) checkAccess(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	if memtype == nil {
		return 0, errors.New("core: nil memtype")
	}
	if count < 0 {
		return 0, fmt.Errorf("core: negative count %d", count)
	}
	d := count * memtype.Size()
	if d == 0 {
		return 0, nil
	}
	if memtype.TrueLB() < 0 {
		return 0, errors.New("core: memtype places data at negative offsets")
	}
	need := (count-1)*memtype.Extent() + memtype.TrueUB()
	if need > int64(len(buf)) {
		return 0, fmt.Errorf("core: buffer too small: need %d bytes, have %d", need, len(buf))
	}
	if d%f.v.esize != 0 {
		return 0, fmt.Errorf("core: access of %d bytes is not a whole number of etypes (etype size %d)", d, f.v.esize)
	}
	return d, nil
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}
