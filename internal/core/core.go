// Package core implements the MPI-IO layer of the reproduction: files
// with fileviews (displacement + etype + filetype), independent and
// collective read/write of possibly non-contiguous data, data sieving and
// two-phase collective I/O — with two interchangeable datatype engines:
//
//   - ListBased: the ROMIO-style baseline.  Filetypes and memtypes are
//     explicitly flattened into ol-lists of ⟨offset,length⟩ tuples;
//     positioning traverses the lists linearly; copies are performed per
//     tuple; every collective access makes each access process (AP) build
//     and transmit an ol-list of its accesses for each I/O process (IOP)
//     whose file domain it touches (paper §2).
//
//   - Listless: the paper's contribution (§3).  No ol-lists exist:
//     pack/unpack and positioning use flattening-on-the-fly
//     (internal/fotf); each process's fileview is exchanged once, as a
//     compact encoded tree, when the view is set (fileview caching); and
//     collective writes skip the read-modify-write pre-read when the
//     combined fileviews cover the written range (the mergeview
//     optimization).
//
// Both engines produce byte-identical files; only their cost profiles
// differ.  Per-file Stats expose the differences (tuples built, list
// bytes exchanged, pre-reads skipped, ...).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/fotf"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Engine selects the datatype-handling implementation.
type Engine int

// The two engines.
const (
	Listless  Engine = iota // flattening-on-the-fly (the paper's technique)
	ListBased               // explicit ol-lists (ROMIO-style baseline)
)

func (e Engine) String() string {
	if e == ListBased {
		return "list-based"
	}
	return "listless"
}

// Options configure an open file.
type Options struct {
	// Engine selects list-based or listless datatype handling.
	Engine Engine
	// SieveBufSize is the file-buffer size for independent data sieving.
	SieveBufSize int
	// PackBufSize is the intermediate pack-buffer size (Figure 3's p).
	PackBufSize int
	// CollBufSize is the per-window file-buffer size of two-phase
	// collective I/O.
	CollBufSize int
	// IONodes is the number of I/O processes (aggregators) for
	// collective access; 0 means every process is an IOP.
	IONodes int
	// DisableViewCache makes the listless engine re-send the encoded
	// fileview on every collective access instead of once per SetView
	// (ablation of fileview caching).
	DisableViewCache bool
	// DisableMergeCheck makes collective writes always pre-read file
	// windows, even when fully covered (ablation of the mergeview
	// write optimization).
	DisableMergeCheck bool
	// SieveDensity is the paper's §5 outlook item, "the decision on the
	// trade-off between data sieving and multiple file accesses":
	// independent non-contiguous accesses whose useful-data fraction in
	// the accessed file range falls below this threshold are performed
	// as one direct backend access per contiguous block instead of via
	// sieve-buffer read-modify-write.  0 disables the heuristic (always
	// sieve, ROMIO's default behaviour).
	SieveDensity float64
}

func (o *Options) fill() {
	if o.SieveBufSize <= 0 {
		o.SieveBufSize = 512 << 10
	}
	if o.PackBufSize <= 0 {
		o.PackBufSize = 256 << 10
	}
	if o.CollBufSize <= 0 {
		o.CollBufSize = 1 << 20
	}
}

// Stats counts the work a file handle performed, separating the
// overheads the paper attributes to list-based I/O.
type Stats struct {
	// ListTuples is the number of ol-list tuples built (flattening,
	// per-access memtype lists, per-IOP access lists, window sub-lists).
	ListTuples int64
	// ListBytesSent is the ol-list exchange volume of collective
	// accesses (16 bytes per tuple).
	ListBytesSent int64
	// ViewBytesSent is the compact-fileview exchange volume of the
	// listless engine (once per SetView, or per access when caching is
	// disabled).
	ViewBytesSent int64
	// SieveReads / SieveWrites count file-buffer windows processed.
	SieveReads, SieveWrites int64
	// PreReadsSkipped counts collective write windows whose pre-read
	// was skipped because the combined fileviews covered them.
	PreReadsSkipped int64
	// DirectReads / DirectWrites count per-block direct backend
	// accesses taken by the sparse-access heuristic (SieveDensity).
	DirectReads, DirectWrites int64
	// BytesRead / BytesWritten are user-data volumes moved.
	BytesRead, BytesWritten int64
}

// Shared is the per-world state of one file: the storage backend plus
// the byte-range lock table used by independent data-sieving writes.
// Every rank passes the same *Shared to Open.
type Shared struct {
	b     storage.Backend
	locks *storage.LockTable

	spMu sync.Mutex
	sp   int64 // shared file pointer, in etypes
}

// NewShared wraps a backend for opening from multiple ranks.
func NewShared(b storage.Backend) *Shared {
	return &Shared{b: b, locks: storage.NewLockTable()}
}

// Backend returns the underlying storage backend.
func (s *Shared) Backend() storage.Backend { return s.b }

// view is one process's fileview in engine-neutral form.
type view struct {
	disp  int64
	etype *datatype.Type
	ftype *datatype.Type

	esize int64
	fsize int64 // data bytes per filetype instance
	fext  int64 // filetype extent

	flat *flatten.View // list-based representation (nil for listless)
}

// remoteView is the cached fileview of another rank (listless collective).
type remoteView struct {
	disp  int64
	ftype *datatype.Type
	fsize int64
	fext  int64
}

// File is one rank's handle on a shared file.  All collective methods
// (Open, SetView, ReadAtAll, WriteAtAll, Close) must be called by every
// rank of the world in the same order.
type File struct {
	p    *mpi.Proc
	sh   *Shared
	opts Options

	v     view
	cache map[*datatype.Type]flatten.List // explicit-flatten cache (list-based)

	remote []remoteView   // per-rank cached views (listless)
	merged *datatype.Type // mergeview struct type (listless write optimization)

	ptr    int64 // individual file pointer, in etypes
	atomic bool  // MPI-IO atomic mode: whole-access locking

	// Stats accumulates the work counters of this handle.
	Stats Stats
}

// Open opens the shared backend collectively and installs the trivial
// byte view (disp 0, etype and filetype Byte).
func Open(p *mpi.Proc, sh *Shared, opts Options) (*File, error) {
	opts.fill()
	if opts.IONodes < 0 || opts.IONodes > p.Size() {
		return nil, fmt.Errorf("core: IONodes %d out of range [0,%d]", opts.IONodes, p.Size())
	}
	f := &File{
		p:     p,
		sh:    sh,
		opts:  opts,
		cache: make(map[*datatype.Type]flatten.List),
	}
	if err := f.SetView(0, datatype.Byte, datatype.Byte); err != nil {
		return nil, err
	}
	return f, nil
}

// Close releases the handle collectively and flushes the backend.
func (f *File) Close() error {
	f.p.Barrier()
	if f.p.Rank() == 0 {
		return f.sh.b.Sync()
	}
	return nil
}

// Engine reports the engine this handle uses.
func (f *File) Engine() Engine { return f.opts.Engine }

// Proc returns the rank handle the file was opened with.
func (f *File) Proc() *mpi.Proc { return f.p }

// reserved collective tags (below mpi's internal space).
const (
	tagCollList = 1<<20 + 1
	tagCollData = 1<<20 + 2
)

// SetView installs a new fileview collectively: the file appears as the
// data of filetype tiled from byte displacement disp, addressed in units
// of etype.  The individual file pointer is reset to zero.
func (f *File) SetView(disp int64, etype, filetype *datatype.Type) error {
	if disp < 0 {
		return fmt.Errorf("core: negative displacement %d", disp)
	}
	if err := datatype.ValidateFiletype(etype, filetype); err != nil {
		return err
	}
	f.v = view{
		disp:  disp,
		etype: etype,
		ftype: filetype,
		esize: etype.Size(),
		fsize: filetype.Size(),
		fext:  filetype.Extent(),
	}
	f.ptr = 0
	f.remote = nil
	f.merged = nil

	switch f.opts.Engine {
	case ListBased:
		// Explicit flattening, cached for reuse with the same datatype
		// (ROMIO stores the ol-list on the datatype).
		l, ok := f.cache[filetype]
		if !ok {
			l = flatten.Flatten(filetype)
			f.cache[filetype] = l
			f.Stats.ListTuples += int64(len(l))
		}
		f.v.flat = &flatten.View{
			Disp:   disp,
			Extent: filetype.Extent(),
			Bytes:  l.Bytes(),
			Segs:   l,
		}
		// List-based SetView is still collective per MPI; synchronize.
		f.p.Barrier()

	case Listless:
		if !f.opts.DisableViewCache {
			f.exchangeViews()
			f.buildMergeview()
		} else {
			f.p.Barrier()
		}
	}
	return nil
}

// exchangeViews performs fileview caching: every rank broadcasts its
// encoded (compact, tree-proportional) fileview once.
func (f *File) exchangeViews() {
	payload := f.encodedView()
	f.Stats.ViewBytesSent += int64(len(payload)) // accounted once per SetView
	parts := f.p.Allgather(payload)
	f.remote = make([]remoteView, f.p.Size())
	for r, part := range parts {
		f.remote[r] = decodeView(r, part)
	}
}

func (f *File) encodedView() []byte {
	enc := datatype.Encode(f.v.ftype)
	payload := make([]byte, 8+len(enc))
	putInt64(payload, f.v.disp)
	copy(payload[8:], enc)
	return payload
}

func decodeView(rank int, part []byte) remoteView {
	disp := getInt64(part)
	ft, err := datatype.Decode(part[8:])
	if err != nil {
		panic(fmt.Sprintf("core: rank %d sent undecodable fileview: %v", rank, err))
	}
	return remoteView{disp: disp, ftype: ft, fsize: ft.Size(), fext: ft.Extent()}
}

// buildMergeview constructs the merged fileview of all processes as a
// struct type (the paper's mergetype), valid when all displacements and
// extents agree — the common file-partitioning case.  When they do not,
// merged stays nil and the collective write-coverage check falls back to
// per-rank navigation sums.
func (f *File) buildMergeview() {
	disp := f.remote[0].disp
	ext := f.remote[0].fext
	for _, rv := range f.remote[1:] {
		if rv.disp != disp || rv.fext != ext {
			f.merged = nil
			return
		}
	}
	n := len(f.remote)
	blocklens := make([]int64, n)
	displs := make([]int64, n)
	children := make([]*datatype.Type, n)
	for i, rv := range f.remote {
		blocklens[i] = 1
		displs[i] = 0
		children[i] = rv.ftype
	}
	m, err := datatype.Struct(blocklens, displs, children)
	if err != nil {
		f.merged = nil
		return
	}
	// Pin the extent so the mergetype tiles like the filetypes.
	if m.Extent() != ext {
		if m, err = datatype.Resized(m, 0, ext); err != nil {
			f.merged = nil
			return
		}
	}
	// The mergeview coverage check is only sound when the fileviews do
	// not overlap (each file byte visible through at most one view).
	// Validate once at SetView; overlapping views (e.g. every rank using
	// the same default byte view) fall back to the per-AP sums.
	if m.Blocks() > 1<<22 || !nonOverlapping(m) {
		f.merged = nil
		return
	}
	f.merged = m
}

// nonOverlapping reports whether one instance of t covers each byte at
// most once, including across the tiling boundary.
func nonOverlapping(t *datatype.Type) bool {
	type seg struct{ off, end int64 }
	segs := make([]seg, 0, t.Blocks())
	t.Walk(func(off, length int64) {
		segs = append(segs, seg{off, off + length})
	})
	sort.Slice(segs, func(i, j int) bool { return segs[i].off < segs[j].off })
	var prevEnd int64 = -1 << 62
	for _, s := range segs {
		if s.off < prevEnd {
			return false
		}
		prevEnd = s.end
	}
	// Tiling: data must stay within one extent window.
	return prevEnd <= t.Extent() && (len(segs) == 0 || segs[0].off >= 0)
}

// SetAtomicity enables or disables MPI-IO atomic mode collectively
// (MPI_File_set_atomicity).  In atomic mode every independent access
// locks its whole file range, so concurrent overlapping writes serialize
// as indivisible units instead of interleaving at sieve-window
// granularity.
func (f *File) SetAtomicity(enable bool) {
	f.p.Barrier()
	f.atomic = enable
	f.p.Barrier()
}

// Atomicity reports whether atomic mode is enabled
// (MPI_File_get_atomicity).
func (f *File) Atomicity() bool { return f.atomic }

// SeekTo sets the individual file pointer, in etype units.
func (f *File) SeekTo(offset int64) { f.ptr = offset }

// Tell reports the individual file pointer, in etype units.
func (f *File) Tell() int64 { return f.ptr }

// checkAccess validates an access and returns the number of data bytes.
func (f *File) checkAccess(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	if memtype == nil {
		return 0, errors.New("core: nil memtype")
	}
	if count < 0 {
		return 0, fmt.Errorf("core: negative count %d", count)
	}
	d := count * memtype.Size()
	if d == 0 {
		return 0, nil
	}
	if memtype.TrueLB() < 0 {
		return 0, errors.New("core: memtype places data at negative offsets")
	}
	need := (count-1)*memtype.Extent() + memtype.TrueUB()
	if need > int64(len(buf)) {
		return 0, fmt.Errorf("core: buffer too small: need %d bytes, have %d", need, len(buf))
	}
	if d%f.v.esize != 0 {
		return 0, fmt.Errorf("core: access of %d bytes is not a whole number of etypes (etype size %d)", d, f.v.esize)
	}
	return d, nil
}

// Engine-neutral navigation within the local fileview.  The listless
// engine uses O(depth) flattening-on-the-fly navigation; the list-based
// engine traverses its ol-list linearly.

// dataToFileStart maps a view data offset to the absolute file offset of
// its first byte.
func (f *File) dataToFileStart(d int64) int64 {
	if f.opts.Engine == ListBased {
		return f.v.flat.DataToFile(d)
	}
	return f.v.disp + fotf.StartPos(f.v.ftype, d)
}

// dataToFileEnd maps a view data offset to the absolute file offset just
// past byte d-1.
func (f *File) dataToFileEnd(d int64) int64 {
	if f.opts.Engine == ListBased {
		return f.v.flat.DataToFile(d-1) + 1
	}
	return f.v.disp + fotf.EndPos(f.v.ftype, d)
}

// dataInRange counts the local view's data bytes within the absolute
// file range [lo, hi).
func (f *File) dataInRange(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	if f.opts.Engine == ListBased {
		var n int64
		f.v.flat.EachInRange(lo, hi, func(_, _, ln int64) { n += ln })
		return n
	}
	a := fotf.BufToData(f.v.ftype, lo-f.v.disp)
	b := fotf.BufToData(f.v.ftype, hi-f.v.disp)
	return b - a
}

// memState carries the per-access memtype representation: the list-based
// engine creates (and discards) an ol-list per access, exactly as ROMIO
// does for non-contiguous memtypes.  Contiguous memory (including a
// basic type with a large count) collapses to one segment spanning the
// whole access, as in ROMIO's contiguous shortcut.
type memState struct {
	t     *datatype.Type
	count int64
	list  flatten.List // list-based only
	ext   int64        // tiling extent matching list/count (list-based)
}

func (f *File) newMemState(memtype *datatype.Type, count int64) *memState {
	ms := &memState{t: memtype, count: count}
	if f.opts.Engine == ListBased {
		if memtype.ContiguousTiled() {
			total := count * memtype.Size()
			ms.list = flatten.List{{Off: memtype.TrueLB(), Len: total}}
			ms.ext = count * memtype.Extent()
			ms.count = 1
		} else {
			ms.list = flatten.Flatten(memtype)
			ms.ext = memtype.Extent()
			f.Stats.ListTuples += int64(len(ms.list))
		}
	}
	return ms
}

// packUser packs n bytes of user data starting at data offset skip into
// dst (from the memtype-described buffer buf).
func (f *File) packUser(dst []byte, buf []byte, mem *memState, skip, n int64) {
	if f.opts.Engine == ListBased {
		flatten.PackList(dst[:n], buf, mem.list, mem.ext, mem.count, skip, n)
		return
	}
	fotf.PackCount(dst[:n], buf, mem.count, mem.t, skip)
}

// unpackUser is the inverse of packUser.
func (f *File) unpackUser(buf []byte, src []byte, mem *memState, skip, n int64) {
	if f.opts.Engine == ListBased {
		flatten.UnpackList(buf, src[:n], mem.list, mem.ext, mem.count, skip, n)
		return
	}
	fotf.UnpackCount(buf, src[:n], mem.count, mem.t, skip)
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}
