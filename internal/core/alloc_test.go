package core

import (
	"runtime/debug"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// The allocation-regression suite: the steady-state collective window
// loop must not allocate.  Per-collective setup (plan, engine states,
// pipeline channels) may allocate; per-window work — window buffers,
// exchange chunks, engine window descriptors, pipeline hand-offs — must
// come from the pool and the freelists.
//
// Measurement: inside one warm world, run the same collective at two
// sizes and divide the allocation difference by the window difference.
// Everything per-collective cancels in the subtraction; what remains is
// the per-window cost.  GC is disabled during the measurement so
// sync.Pool cannot shed its contents mid-run.

const (
	allocWinSize  = 4096 // CollBufSize: small windows, many of them
	allocBlocklen = 64   // holey vector: 50% density, pre-reads happen
)

// allocView installs the holey fileview: every other allocBlocklen-byte
// block, so a write window is never fully covered and the pipelined
// loop exercises its pre-read path too.
func allocView(f *File, blocks int64) error {
	vec, err := datatype.Hvector(blocks, allocBlocklen, 2*allocBlocklen, datatype.Byte)
	if err != nil {
		return err
	}
	return f.SetView(0, datatype.Byte, vec)
}

// measureCollective returns the average allocations of one collective
// access of d data bytes in an already-warm world.
func measureCollective(t *testing.T, f *File, buf []byte, d int64, write bool) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		var err error
		if write {
			_, err = f.WriteAtAll(0, d, datatype.Byte, buf[:d])
		} else {
			_, err = f.ReadAtAll(0, d, datatype.Byte, buf[:d])
		}
		if err != nil {
			t.Errorf("collective: %v", err)
		}
	})
}

func testWindowAllocFree(t *testing.T, engine Engine, write, metrics bool, wantPerWindow float64) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Window counts: d bytes of data cover 2*d bytes of file (50%
	// density), so windows = 2*d/allocWinSize.
	const dSmall = int64(4 * allocWinSize / 2)  // 4 windows
	const dLarge = int64(16 * allocWinSize / 2) // 16 windows
	const winSmall, winLarge = 4, 16

	var reg *obs.Registry
	if metrics {
		reg = obs.NewRegistry()
	}
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		sh := NewShared(storage.NewMem())
		f, err := Open(p, sh, Options{Engine: engine, CollBufSize: allocWinSize, Metrics: reg})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := allocView(f, dLarge/allocBlocklen); err != nil {
			panic(err)
		}
		buf := make([]byte, dLarge)

		// Warm-up: grows the inbox queue to its high-water mark, fills
		// the buffer pool's classes, and populates the engine freelist.
		if _, err := f.WriteAtAll(0, dLarge, datatype.Byte, buf); err != nil {
			panic(err)
		}
		if _, err := f.ReadAtAll(0, dLarge, datatype.Byte, buf); err != nil {
			panic(err)
		}

		aSmall := measureCollective(t, f, buf, dSmall, write)
		aLarge := measureCollective(t, f, buf, dLarge, write)
		perWindow := (aLarge - aSmall) / (winLarge - winSmall)
		if perWindow > wantPerWindow {
			t.Errorf("engine %v write=%v: %.2f allocs per steady-state window (small=%v large=%v), want <= %v",
				engine, write, perWindow, aSmall, aLarge, wantPerWindow)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestListlessWindowZeroAlloc: the listless engine's steady-state
// window loop — pooled buffers, recycled chunks, freelisted window
// descriptors, persistent pipeline workers — performs zero allocations
// per window, for both the pipelined and the sequential loop.
func TestListlessWindowZeroAlloc(t *testing.T) {
	for _, write := range []bool{true, false} {
		testWindowAllocFree(t, Listless, write, false, 0)
	}
}

// TestListlessWindowZeroAllocMetricsOn: instrumentation must be free in
// the steady state.  Every hot-path increment is a single atomic add on
// a handle registered at Open, so turning the metrics registry on may
// not reintroduce per-window allocations.
func TestListlessWindowZeroAllocMetricsOn(t *testing.T) {
	for _, write := range []bool{true, false} {
		testWindowAllocFree(t, Listless, write, true, 0)
	}
}

// TestListlessSequentialWindowZeroAlloc covers the DisableCollPipeline
// ablation loop.
func TestListlessSequentialWindowZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const d = int64(8 * allocWinSize / 2)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		sh := NewShared(storage.NewMem())
		f, err := Open(p, sh, Options{Engine: Listless, CollBufSize: allocWinSize, DisableCollPipeline: true})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := allocView(f, d/allocBlocklen); err != nil {
			panic(err)
		}
		buf := make([]byte, d)
		if _, err := f.WriteAtAll(0, d, datatype.Byte, buf); err != nil {
			panic(err)
		}
		aSmall := measureCollective(t, f, buf, d/4, true)
		aLarge := measureCollective(t, f, buf, d, true)
		if perWindow := (aLarge - aSmall) / 6; perWindow > 0 {
			t.Errorf("sequential loop: %.2f allocs per window (small=%v large=%v)", perWindow, aSmall, aLarge)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnpooledAblationAllocates sanity-checks the measurement itself:
// with DisablePool the same loop must allocate per window (otherwise
// the zero assertions above would be vacuous).
func TestUnpooledAblationAllocates(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const dSmall = int64(4 * allocWinSize / 2)
	const dLarge = int64(16 * allocWinSize / 2)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		sh := NewShared(storage.NewMem())
		f, err := Open(p, sh, Options{Engine: Listless, CollBufSize: allocWinSize, DisablePool: true})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := allocView(f, dLarge/allocBlocklen); err != nil {
			panic(err)
		}
		buf := make([]byte, dLarge)
		if _, err := f.WriteAtAll(0, dLarge, datatype.Byte, buf); err != nil {
			panic(err)
		}
		aSmall := measureCollective(t, f, buf, dSmall, true)
		aLarge := measureCollective(t, f, buf, dLarge, true)
		if perWindow := (aLarge - aSmall) / 12; perWindow < 1 {
			t.Errorf("unpooled ablation allocates %.2f per window; expected >= 1 (is the measurement broken?)", perWindow)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// benchCollective is the -benchmem benchmark behind the CI pooled vs
// unpooled benchstat artifact: P=4 nc-nc collective writes+reads.
func benchCollective(b *testing.B, opts Options) {
	const (
		P          = 4
		blockcount = 512
		blocklen   = 64
	)
	d := blockcount * int64(blocklen)
	opts.CollBufSize = 64 << 10
	sh := NewShared(storage.NewMem())
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, opts)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft, err := NoncontigFiletype(p.Rank(), P, blockcount, blocklen)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		buf := make([]byte, d)
		for i := 0; i < b.N; i++ {
			if _, err := f.WriteAtAll(0, d, datatype.Byte, buf); err != nil {
				panic(err)
			}
			if _, err := f.ReadAtAll(0, d, datatype.Byte, buf); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCollectiveWindow(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		benchCollective(b, Options{Engine: Listless})
	})
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		benchCollective(b, Options{Engine: Listless, DisablePool: true, DisableVectored: true})
	})
}
