package core

import "repro/internal/datatype"

// Shared-file-pointer access (MPI-IO §9.4.4): one pointer per file,
// shared by all ranks.  The independent variants (ReadShared /
// WriteShared) serialize against each other in arrival order; the
// collective "ordered" variants serialize deterministically in rank
// order.  All ranks must use views with the same etype size for the
// shared pointer to be meaningful; accesses are positioned in etypes
// like the explicit-offset operations.

// sharedFetchAdd atomically claims n etypes from the shared pointer and
// returns the claimed offset.
func (s *Shared) sharedFetchAdd(n int64) int64 {
	s.spMu.Lock()
	off := s.sp
	s.sp += n
	s.spMu.Unlock()
	return off
}

// SharedOffset reports the current shared file pointer, in etypes.
func (s *Shared) SharedOffset() int64 {
	s.spMu.Lock()
	defer s.spMu.Unlock()
	return s.sp
}

// SeekShared sets the shared file pointer (collective; rank 0's value
// wins, and all ranks synchronize around the update).
func (f *File) SeekShared(offset int64) {
	f.p.Barrier()
	if f.p.Rank() == 0 {
		f.sh.spMu.Lock()
		f.sh.sp = offset
		f.sh.spMu.Unlock()
	}
	f.p.Barrier()
}

// WriteShared writes count instances of memtype at the shared file
// pointer and advances it.  Concurrent callers are serialized in
// arrival order; their regions never overlap.
func (f *File) WriteShared(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(0, count, memtype, buf)
	if err != nil || d == 0 {
		return 0, err
	}
	off := f.sh.sharedFetchAdd(d / f.v.esize)
	return f.WriteAt(off, count, memtype, buf)
}

// ReadShared reads count instances of memtype at the shared file pointer
// and advances it.
func (f *File) ReadShared(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(0, count, memtype, buf)
	if err != nil || d == 0 {
		return 0, err
	}
	off := f.sh.sharedFetchAdd(d / f.v.esize)
	return f.ReadAt(off, count, memtype, buf)
}

// orderedOffsets computes, collectively, each rank's offset for an
// ordered access: the shared pointer plus the prefix sum of the lower
// ranks' etype counts; the pointer advances by the total.
func (f *File) orderedOffsets(myEtypes int64) int64 {
	counts := f.p.AllgatherInt64(myEtypes)
	var prefix, total int64
	for r, c := range counts {
		if r < f.p.Rank() {
			prefix += c
		}
		total += c
	}
	// Every rank computes the same total; rank 0 commits the pointer
	// advance while all ranks wait, so the base is read consistently.
	base := int64(0)
	if f.p.Rank() == 0 {
		base = f.sh.sharedFetchAdd(total)
	}
	bases := f.p.AllgatherInt64(base)
	return bases[0] + prefix
}

// WriteOrdered is the collective shared-pointer write: the ranks' data
// lands in rank order starting at the shared pointer (MPI_File_write_ordered).
func (f *File) WriteOrdered(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(0, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	off := f.orderedOffsets(d / f.v.esize)
	return f.WriteAtAll(off, count, memtype, buf)
}

// ReadOrdered is the collective shared-pointer read
// (MPI_File_read_ordered).
func (f *File) ReadOrdered(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(0, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	off := f.orderedOffsets(d / f.v.esize)
	return f.ReadAtAll(off, count, memtype, buf)
}

// Size reports the current backend size in bytes (MPI_File_get_size).
func (f *File) Size() int64 { return f.sh.b.Size() }

// Preallocate grows the file to at least n bytes (MPI_File_preallocate;
// collective).
func (f *File) Preallocate(n int64) error {
	f.p.Barrier()
	var err error
	if f.p.Rank() == 0 && n > f.sh.b.Size() {
		err = f.sh.b.Truncate(n)
	}
	f.p.Barrier()
	return err
}
