package core

import (
	"errors"

	"repro/internal/trace"
)

// Admission gate: the seam that turns a collective entry point into a
// schedulable job.  When Options.Gate is set, every collective asks the
// gate for a slot before any staging or exchange traffic starts, and
// releases it after the access (including the trailing barrier)
// completes.  The session service (internal/session) supplies a gate
// backed by its shared worker pool; a nil gate costs nothing, so
// standalone files are unaffected.
//
// The gate is consulted by rank 0 only — one admission decision per
// collective, not per rank — and the outcome is broadcast so every
// rank either proceeds into the two-phase schedule or returns
// ErrRejected together.  Acquire may block (queueing); rank 0 blocks
// in the gate while the other ranks block in the broadcast, so no MPI
// traffic for this collective is in flight while the job waits.

// Gate admits collectives onto a shared resource pool.  Acquire blocks
// until a slot is free or fails fast (admission control); on success it
// returns a release func that must be called exactly once when the
// collective finishes.  bytes is the aggregate transfer size estimate
// for weighted-fair ordering; write distinguishes checkpoint-style
// writes from reads.
type Gate interface {
	Acquire(write bool, bytes int64) (release func(), err error)
}

// ErrRejected is returned by collective accesses when the admission
// gate refuses the job (queue full).  All ranks of the world return it
// together; the file and backend are untouched and the caller may
// retry the same collective.
var ErrRejected = errors.New("core: collective rejected by admission gate")

const (
	gateAdmit  byte = 0
	gateReject byte = 1
)

// gateAdmit runs the admission round for one collective: rank 0
// acquires a slot from the gate (the wait is recorded as a
// PhaseSessionQueue span) and broadcasts the outcome.  It returns the
// release func on admission and ErrRejected on rejection; on
// rejection every rank returns together and nothing has been sent.
func (f *File) gateAcquire(d int64, write bool) (func(), error) {
	var release func()
	var payload []byte
	if f.p.Rank() == 0 {
		// One decision for the whole world: the estimate scales the
		// per-rank transfer to the aggregate the IOPs will move.
		est := d * int64(f.p.Size())
		qsp := f.tr.Begin(trace.PhaseSessionQueue, 0, est)
		rel, err := f.opts.Gate.Acquire(write, est)
		qsp.End()
		if err != nil {
			if f.tr.Enabled() {
				f.tr.Instant(trace.PhaseSessionReject, 0, est, err.Error())
			}
			payload = []byte{gateReject}
		} else {
			release = rel
			payload = []byte{gateAdmit}
		}
	}
	payload = f.p.Bcast(0, payload)
	if len(payload) != 1 || payload[0] != gateAdmit {
		// Defensive: a malformed outcome releases any held slot rather
		// than leaking it.
		if release != nil {
			release()
		}
		return nil, ErrRejected
	}
	if release == nil {
		release = func() {}
	}
	return release, nil
}
