package core

import (
	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/fotf"
)

// accessEngine is the seam between the engine-neutral MPI-IO machinery
// (file handles, data sieving, the two-phase collective schedule and its
// window loop) and the two datatype-handling implementations.  The
// paper's observation is that list-based and listless I/O share one
// structure and differ only in how they represent and navigate
// datatypes; everything behind this interface is that difference, and
// nothing outside newEngine branches on the engine choice.
type accessEngine interface {
	// setView installs engine-specific state for the fileview just
	// assigned to f.v and performs the collective synchronization that
	// SetView requires (the listless engine exchanges encoded fileviews
	// and builds the mergeview; the list-based engine flattens and
	// synchronizes).
	setView() error

	// dataToFileStart maps a view data offset to the absolute file
	// offset of its first byte.
	dataToFileStart(d int64) int64
	// dataToFileEnd maps a view data offset to the absolute file offset
	// just past byte d-1.
	dataToFileEnd(d int64) int64
	// dataInRange counts the local view's data bytes within the
	// absolute file range [lo, hi).
	dataInRange(lo, hi int64) int64

	// newMemState builds the per-access memtype representation (the
	// list-based engine creates, and discards, an ol-list per access).
	newMemState(memtype *datatype.Type, count int64) *memState
	// packUser packs n bytes of user data starting at data offset skip
	// into dst, from the memtype-described buffer buf.
	packUser(dst, buf []byte, mem *memState, skip, n int64)
	// unpackUser is the inverse of packUser.
	unpackUser(buf, src []byte, mem *memState, skip, n int64)

	// seekData returns a sequential cursor over the local fileview
	// positioned at data offset d0, for the independent sieving and
	// direct-access paths.
	seekData(d0 int64) viewCursor

	// apSetup runs access-process phase 1 of one collective access:
	// the list-based engine builds and transmits per-IOP access lists,
	// the listless engine re-exchanges encoded views when fileview
	// caching is disabled.  Every rank must call it once per access.
	apSetup(pl *collPlan, d0, d int64) apState
	// iopSetup runs the I/O-process setup (the list-based engine
	// receives one access list from every AP) and returns the
	// window-by-window processor state.  Every IOP rank must call it,
	// even when its domain is empty, to drain the AP phase-1 messages.
	iopSetup(pl *collPlan) (iopState, error)
}

// viewCursor walks the local fileview sequentially over one access.
// The list-based implementation advances an ol-list cursor per tuple;
// the listless implementation navigates with O(depth)
// flattening-on-the-fly calls.
type viewCursor interface {
	// countUpTo reports the data bytes between the cursor's position
	// and the absolute file offset fileHi, without advancing.
	countUpTo(fileHi int64) int64
	// copyWindow moves the next c data bytes between the contiguous
	// buffer cb and the window w holding file bytes from absolute
	// offset winLo, advancing the cursor.  write=true copies cb→w.
	copyWindow(cb, w []byte, c, winLo int64, write bool)
	// eachRun advances the cursor by c data bytes, emitting one
	// (fileOff, dataOff, ln) triple per contiguous file run, with
	// fileOff absolute and dataOff in view-data bytes.
	eachRun(c int64, emit func(fileOff, dataOff, ln int64))
}

// apState is the engine's AP-side state for one collective access.
type apState interface {
	// cursor returns a sequential window cursor over this rank's data
	// within IOP i's domain.  Windows must be visited in ascending
	// order.
	cursor(i int) apCursor
}

// apCursor yields, window by window, the data range [a, b) this rank's
// access holds within [winLo, winHi) of one IOP domain.  a == b means
// no data.
type apCursor interface {
	window(winLo, winHi int64) (a, b int64)
}

// iopState walks an IOP's file domain window by window.  window calls
// must be made in ascending order (the list-based engine advances
// per-AP list cursors), but each returned iopWindow is self-contained,
// which is what lets the pipelined loop overlap the storage I/O of
// neighboring windows.
type iopState interface {
	window(winLo, winHi int64) iopWindow
}

// iopWindow is the exchange state of one collective-buffer window:
// which APs hold data in it, whether their data covers it, and how to
// copy each AP's contiguous chunk to and from the window buffer.
type iopWindow interface {
	// total is the number of data bytes all APs hold in the window.
	total() int64
	// chunkLen is the number of data bytes AP r holds in the window.
	chunkLen(r int) int64
	// covered reports whether the APs' data fully covers the window,
	// making the read-modify-write pre-read of a collective write
	// unnecessary.
	covered() bool
	// copyIn copies AP r's received chunk into the window buffer w.
	copyIn(w []byte, r int, chunk []byte)
	// copyOut extracts AP r's portion of the window buffer w into
	// chunk, which has chunkLen(r) bytes.
	copyOut(w []byte, r int, chunk []byte)
	// release returns the window to its engine for reuse.  The caller
	// must not touch the window afterwards; engines may recycle the
	// backing state on the next window call (or make release a no-op).
	release()
}

// memState carries the per-access memtype representation.  The
// list-based engine fills list/ext with the flattened memtype exactly
// as ROMIO does for non-contiguous memtypes; contiguous memory
// (including a basic type with a large count) collapses to one segment
// spanning the whole access, as in ROMIO's contiguous shortcut.  The
// listless engine needs only the type and count.
type memState struct {
	t     *datatype.Type
	count int64
	list  flatten.List // list-based only
	ext   int64        // tiling extent matching list/count (list-based)

	// prog, when non-nil, replaces the per-window tree walk (or list
	// scan) of packUser/unpackUser with the compiled copy program; cur
	// resumes it across the access's ascending windows.  Both engines
	// share this memory-side fast path — the ablation and the compile
	// guards fall back by leaving prog nil.
	prog *fotf.Program
	cur  fotf.Cursor
}

// setProgram installs the compiled memtype program (which may be nil)
// and rewinds the execution cursor.
func (ms *memState) setProgram(p *fotf.Program) {
	ms.prog = p
	ms.cur.Reset(p)
}

// packProg moves min(n, count*size-skip) bytes at data offset skip
// between the contiguous buffer dst and the memtype-described buffer
// buf through the compiled program — the same clamp PackCount and the
// list scan apply.  It reports false when no program is live and the
// caller must fall back.
func (ms *memState) packProg(dst, buf []byte, skip, n int64, pack bool) bool {
	if ms.prog == nil {
		return false
	}
	if limit := ms.count*ms.prog.Size() - skip; n > limit {
		n = limit
	}
	if n <= 0 {
		return true
	}
	ms.cur.CopyRange(dst[:n], buf, skip, skip+n, 0, pack)
	return true
}

// newEngine constructs the engine the handle's options select.  This is
// the single place the engine choice is branched on; every other
// behavioral difference flows through the accessEngine interface.
func newEngine(f *File) accessEngine {
	if f.opts.Engine == ListBased {
		return newListEngine(f)
	}
	return &listlessEngine{f: f}
}
