package core

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"repro/internal/datatype"
	"repro/internal/ioserver"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// Remote-storage matrix: the transport matrix extended with a storage
// axis.  The same 4-rank collective write + read-back must land
// byte-identical bytes whether the backend is a local Mem or a tier of
// remote I/O-server processes owning one stripe each — for both
// engines — and tearing the servers down must leak no goroutines or
// file descriptors.

// ioServerTier starts n in-process I/O servers over Mem stripes and
// returns the aggregate backend plus a shutdown func.
func ioServerTier(t *testing.T, unit int64, n int) (*ioserver.Striped, func()) {
	t.Helper()
	geom := storage.StripeGeom{Unit: unit, Count: n}
	addrs := make([]string, n)
	servers := make([]*ioserver.Server, n)
	for i := 0; i < n; i++ {
		srv, err := ioserver.New(ioserver.Config{Backend: storage.NewMem(), Geom: geom, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		go srv.Serve(ln)
	}
	agg, err := ioserver.NewStriped(unit, addrs, ioserver.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return agg, func() {
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
}

// flattenBackend reads a backend's whole contents (one vectored call,
// so remote tiers pay one round-trip batch per server, not one per
// stripe unit).
func flattenBackend(t *testing.T, b storage.Backend) []byte {
	t.Helper()
	buf := make([]byte, b.Size())
	if len(buf) == 0 {
		return buf
	}
	if err := storage.ReadAtv(b, []storage.Segment{{Off: 0, Buf: buf}}); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestRemoteStorageMatrixByteIdentical is the acceptance criterion of
// the I/O-server tier: {local, remote 1-server, remote 3-server} × both
// engines, all byte-identical to the flat local oracle.
func TestRemoteStorageMatrixByteIdentical(t *testing.T) {
	const P = 4
	const blockcount, blocklen = 16, 8
	d := int64(blockcount * blocklen)

	run := func(t *testing.T, eng Engine, be storage.Backend) []byte {
		t.Helper()
		eps, err := transport.NewLocalTCPWorld(P, transport.TCPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sh := NewShared(be)
		_, err = mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
				panic(err)
			}
			data := pattern(p.Rank(), d)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			got := make([]byte, d)
			if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic(fmt.Sprintf("rank %d: collective read-back mismatch", p.Rank()))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return flattenBackend(t, be)
	}

	for _, eng := range []Engine{ListBased, Listless} {
		t.Run(eng.String(), func(t *testing.T) {
			check := testutil.LeakCheck(t)
			fdBefore := testutil.FDCount(t)

			oracle := run(t, eng, storage.NewMem())
			if len(oracle) == 0 {
				t.Fatal("empty oracle file")
			}
			for _, servers := range []int{1, 3} {
				agg, stop := ioServerTier(t, 32, servers)
				got := run(t, eng, agg)
				stop()
				if !bytes.Equal(got, oracle) {
					t.Fatalf("%d-server file differs from local oracle (%d vs %d bytes)", servers, len(got), len(oracle))
				}
			}

			check()
			if fdBefore >= 0 {
				if fdAfter := testutil.FDCount(t); fdAfter > fdBefore {
					t.Errorf("fd leak: %d before, %d after", fdBefore, fdAfter)
				}
			}
		})
	}
}

// TestRemoteViewDirectPath forces the sparse direct path and checks
// that, against the server tier, it goes through registered views
// (constant-size requests, counted in Stats.ViewReads/ViewWrites),
// lands the same bytes as the offset-list ablation, and costs fewer
// round-trips.
func TestRemoteViewDirectPath(t *testing.T) {
	defer testutil.LeakCheck(t)()
	// 8 useful bytes per 1024: far below the density threshold.  2000
	// runs over 3 servers is ~667 runs per server per access — enough
	// that the offset-list ablation needs multiple ≤MaxListRuns chunks
	// per server while the view path stays at one request per server.
	const runs = 2000
	sparse := func() *datatype.Type {
		v, err := datatype.Vector(runs, 8, 1024, datatype.Byte)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	d := int64(runs * 8)

	type result struct {
		flat   []byte
		rounds int64
		stats  Stats
	}
	run := func(disableView bool) result {
		agg, stop := ioServerTier(t, 4096, 3)
		defer stop()
		sh := NewShared(agg)
		var st Stats
		_, err := mpi.Run(1, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: Listless, SieveDensity: 0.25, DisableViewPath: disableView})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, sparse()); err != nil {
				panic(err)
			}
			data := pattern(1, d)
			if _, err := f.WriteAt(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			got := make([]byte, d)
			if _, err := f.ReadAt(0, d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic("direct read-back mismatch")
			}
			st = f.Stats
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds := agg.Rounds() // before flatten's own round-trips
		return result{flat: flattenBackend(t, agg), rounds: rounds, stats: st}
	}

	view := run(false)
	list := run(true)

	if !bytes.Equal(view.flat, list.flat) {
		t.Fatal("view path and offset-list path landed different bytes")
	}
	if view.stats.ViewRegistrations == 0 || view.stats.ViewReads == 0 || view.stats.ViewWrites == 0 {
		t.Fatalf("view path not taken: %+v", view.stats)
	}
	if list.stats.ViewReads != 0 || list.stats.ViewWrites != 0 {
		t.Fatalf("ablation still used views: %+v", list.stats)
	}
	if list.stats.DirectReads == 0 {
		t.Fatalf("ablation did not take the direct path: %+v", list.stats)
	}
	if view.rounds >= list.rounds {
		t.Fatalf("view path cost %d round-trips, offset lists %d — expected fewer", view.rounds, list.rounds)
	}
}
