package core

import "repro/internal/obs"

// fileMetrics are the live scrape-plane counters of one file handle,
// mirroring the hot-path Stats fields with atomic counters so a
// concurrent /metrics scrape sees a race-free, current view of a
// collective in progress.  With Options.Metrics unset every handle is
// nil and every increment is a no-op through the nil receivers — the
// steady-state window loop stays allocation-free either way (asserted
// by the allocation-regression suite with metrics on).
type fileMetrics struct {
	collWrites *obs.Counter
	collReads  *obs.Counter
	writeBytes *obs.Counter
	readBytes  *obs.Counter

	windows     *obs.Counter
	overlapped  *obs.Counter
	preSkipped  *obs.Counter
	sieveReads  *obs.Counter
	sieveWrites *obs.Counter

	exchangeNs *obs.Counter
	copyNs     *obs.Counter
	storageNs  *obs.Counter

	epochsCommitted *obs.Counter
	epochRetries    *obs.Counter
	epochAborts     *obs.Counter

	progCompiles *obs.Counter
	progHits     *obs.Counter
}

// newFileMetrics registers the core_* metrics; a nil registry yields
// all-nil handles.
func newFileMetrics(r *obs.Registry) fileMetrics {
	if r == nil {
		return fileMetrics{}
	}
	return fileMetrics{
		collWrites: r.Counter("core_collective_writes_total", "Collective write accesses completed."),
		collReads:  r.Counter("core_collective_reads_total", "Collective read accesses completed."),
		writeBytes: r.Counter("core_written_bytes_total", "Data bytes moved by collective and independent writes."),
		readBytes:  r.Counter("core_read_bytes_total", "Data bytes moved by collective and independent reads."),

		windows:     r.Counter("core_windows_total", "IOP file windows processed."),
		overlapped:  r.Counter("core_windows_overlapped_total", "Windows whose storage I/O overlapped a neighbor's exchange (pipeline hits)."),
		preSkipped:  r.Counter("core_prereads_skipped_total", "Window pre-reads skipped by the mergeview full-coverage check."),
		sieveReads:  r.Counter("core_sieve_reads_total", "Collective window reads issued to storage."),
		sieveWrites: r.Counter("core_sieve_writes_total", "Collective window write-backs issued to storage."),

		exchangeNs: r.Counter("core_exchange_ns_total", "Nanoseconds in AP-IOP data exchange."),
		copyNs:     r.Counter("core_copy_ns_total", "Nanoseconds in pack/unpack and window merge copies."),
		storageNs:  r.Counter("core_storage_ns_total", "Nanoseconds in collective window storage I/O."),

		epochsCommitted: r.Counter("core_epochs_committed_total", "Epoch commit rounds completed."),
		epochRetries:    r.Counter("core_epoch_retries_total", "Epoch seal/commit rounds retried after a server bounce."),
		epochAborts:     r.Counter("core_epoch_aborts_total", "Epochs abandoned after a collective fault."),

		progCompiles: r.Counter("core_program_compiles_total", "Datatype copy programs compiled (memo-cache misses)."),
		progHits:     r.Counter("core_program_cache_hits_total", "Program memo-cache hits."),
	}
}

// registerProgramCacheMetrics exposes the process-wide program cache on
// a registry as gauges reading the cache's own atomics — zero cost on
// the compile/lookup path.  Registration is idempotent per registry
// (obs dedupes by name), so every Open may call it.
func registerProgramCacheMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("core_program_cache_size", "Compiled datatype programs resident in the memo cache.",
		programs.size)
	r.GaugeFunc("core_program_cache_evictions_total", "Programs evicted from the memo cache LRU.",
		programs.evictions.Load)
	r.GaugeFunc("core_program_compile_ns_total", "Nanoseconds spent compiling datatype programs.",
		programs.compileNs.Load)
}
