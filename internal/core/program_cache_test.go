package core

import (
	"fmt"
	"runtime/debug"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// uniqueVec builds a vector whose geometry (and therefore encoding) is
// unique to (tag, i), so tests get cache keys no other test has warmed.
func uniqueVec(t *testing.T, tag, i int64) *datatype.Type {
	t.Helper()
	dt, err := datatype.Vector(2+i%5, 3+tag%7, 64+tag*17+i*3, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

// TestProgramCacheLRU pins the memo cache mechanics on a private
// two-entry cache: hit moves to front, insertion evicts the back, and a
// re-lookup of an evicted key recompiles.
func TestProgramCacheLRU(t *testing.T) {
	pc := newProgramCache(2)
	a := uniqueVec(t, 1000, 0)
	b := uniqueVec(t, 1000, 1)
	c := uniqueVec(t, 1000, 2)

	if _, hit := pc.lookup(nil, a); hit {
		t.Fatal("first lookup of a must miss")
	}
	if _, hit := pc.lookup(nil, a); !hit {
		t.Fatal("second lookup of a must hit")
	}
	if _, hit := pc.lookup(nil, b); hit {
		t.Fatal("first lookup of b must miss")
	}
	// a was most recently used via its hit; refresh it so b is the LRU.
	if _, hit := pc.lookup(nil, a); !hit {
		t.Fatal("a must still be resident")
	}
	if _, hit := pc.lookup(nil, c); hit {
		t.Fatal("first lookup of c must miss")
	}
	// c's insertion must have evicted b, the least recently used, and
	// kept a, the most recently used.
	if _, hit := pc.lookup(nil, a); !hit {
		t.Fatal("a must have survived c's insertion")
	}
	if _, hit := pc.lookup(nil, b); hit {
		t.Fatal("b must have been evicted")
	}
	if got := pc.size(); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
	if pc.evictions.Load() < 2 {
		t.Errorf("evictions = %d, want >= 2", pc.evictions.Load())
	}
	if pc.compiles.Load() != 4 { // a, b, c, b again
		t.Errorf("compiles = %d, want 4", pc.compiles.Load())
	}
}

// TestProgramCacheSharedAcrossRanks: the cache is process-wide, so the
// ranks of one in-process world share compiled programs — a view shape
// is compiled on first contact, and a second world reusing the same
// shape compiles nothing at all.
func TestProgramCacheSharedAcrossRanks(t *testing.T) {
	const P = 4
	ft := uniqueVec(t, 2000, 0) // tag unique to this test
	run := func() (compiles, hits int64) {
		sh := NewShared(storage.NewMem())
		var c, h [P]int64
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: Listless})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			c[p.Rank()], h[p.Rank()] = f.Stats.ProgramCompiles, f.Stats.ProgramCacheHits
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < P; r++ {
			compiles += c[r]
			hits += h[r]
		}
		return
	}
	compiles, hits := run()
	if compiles < 1 {
		t.Errorf("first world: %d compiles, want >= 1", compiles)
	}
	if hits == 0 {
		t.Errorf("first world: no cache hits despite %d ranks sharing one view shape", P)
	}
	compiles, hits = run()
	if compiles != 0 {
		t.Errorf("second world: %d compiles, want 0 (shape already cached)", compiles)
	}
	if hits == 0 {
		t.Error("second world: no cache hits")
	}
}

// TestProgramCacheEvictionRecompile is the end-to-end eviction test: a
// churn of more distinct fileviews than the cache holds ages the first
// one out, and re-setting it recompiles instead of hitting.
func TestProgramCacheEvictionRecompile(t *testing.T) {
	sh := NewShared(storage.NewMem())
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		first := uniqueVec(t, 3000, 0)
		if err := f.SetView(0, datatype.Byte, first); err != nil {
			panic(err)
		}
		ev0 := programs.evictions.Load()
		for i := int64(1); i <= programCacheCap+4; i++ {
			if err := f.SetView(0, datatype.Byte, uniqueVec(t, 3000, i)); err != nil {
				panic(err)
			}
		}
		if ev := programs.evictions.Load(); ev <= ev0 {
			panic(fmt.Sprintf("no evictions after %d distinct views (cap %d)", programCacheCap+4, programCacheCap))
		}
		c0 := f.Stats.ProgramCompiles
		if err := f.SetView(0, datatype.Byte, first); err != nil {
			panic(err)
		}
		if got := f.Stats.ProgramCompiles - c0; got == 0 {
			panic("re-set of an evicted view did not recompile")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgramSteadyStateZeroAlloc: with a compiled program live on the
// fileview — asserted, not assumed — the steady-state collective window
// loop still performs zero allocations per window: compilation happens
// once at SetView, execution state is the embedded cursor, and the
// kernels allocate nothing.
func TestProgramSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const dSmall = int64(4 * allocWinSize / 2)
	const dLarge = int64(16 * allocWinSize / 2)
	const winSmall, winLarge = 4, 16

	_, err := mpi.Run(1, func(p *mpi.Proc) {
		sh := NewShared(storage.NewMem())
		f, err := Open(p, sh, Options{Engine: Listless, CollBufSize: allocWinSize})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := allocView(f, dLarge/allocBlocklen); err != nil {
			panic(err)
		}
		if f.Stats.ProgramCompiles+f.Stats.ProgramCacheHits == 0 {
			panic("fileview did not consult the program cache")
		}
		if eng, ok := f.eng.(*listlessEngine); !ok || eng.prog == nil {
			panic("no compiled program live on the fileview")
		}
		buf := make([]byte, dLarge)
		if _, err := f.WriteAtAll(0, dLarge, datatype.Byte, buf); err != nil {
			panic(err)
		}
		if _, err := f.ReadAtAll(0, dLarge, datatype.Byte, buf); err != nil {
			panic(err)
		}
		for _, write := range []bool{true, false} {
			aSmall := measureCollective(t, f, buf, dSmall, write)
			aLarge := measureCollective(t, f, buf, dLarge, write)
			if perWindow := (aLarge - aSmall) / (winLarge - winSmall); perWindow > 0 {
				t.Errorf("write=%v: %.2f allocs per steady-state window with programs live (small=%v large=%v)",
					write, perWindow, aSmall, aLarge)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
