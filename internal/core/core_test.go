package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// noncontigType builds the Figure-4 fileview type for rank p of P:
// blockcount blocks of blocklen bytes, stride P*blocklen, displaced by
// p*blocklen, extent blockcount*P*blocklen.  The union over ranks covers
// the file contiguously.
func noncontigType(t *testing.T, p, P int, blockcount, blocklen int64) *datatype.Type {
	t.Helper()
	dt, err := NoncontigFiletype(p, P, blockcount, blocklen)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

// NoncontigFiletype is exported for reuse by dependent packages' tests.
func NoncontigFiletype(p, P int, blockcount, blocklen int64) (*datatype.Type, error) {
	vec, err := datatype.Hvector(blockcount, blocklen, int64(P)*blocklen, datatype.Byte)
	if err != nil {
		return nil, err
	}
	disp := int64(p) * blocklen
	extent := blockcount * int64(P) * blocklen
	return datatype.Struct(
		[]int64{1, 1, 1},
		[]int64{0, disp, extent},
		[]*datatype.Type{datatype.LBMarker, vec, datatype.UBMarker},
	)
}

func pattern(rank int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((rank*131 + i*7) % 251)
	}
	return b
}

// runBoth runs the scenario under both engines on fresh Mem backends and
// returns the two backends for comparison.
func runBoth(t *testing.T, P int, opts Options, scenario func(f *File)) (listless, listbased *storage.Mem) {
	t.Helper()
	backends := make([]*storage.Mem, 2)
	for i, eng := range []Engine{Listless, ListBased} {
		be := storage.NewMem()
		backends[i] = be
		sh := NewShared(be)
		o := opts
		o.Engine = eng
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, o)
			if err != nil {
				panic(err)
			}
			scenario(f)
			if err := f.Close(); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
	}
	return backends[0], backends[1]
}

// requireEqualFiles asserts both engines produced identical files.
func requireEqualFiles(t *testing.T, a, b *storage.Mem) {
	t.Helper()
	ab, bb := a.Bytes(), b.Bytes()
	if !bytes.Equal(ab, bb) {
		if len(ab) != len(bb) {
			t.Fatalf("file sizes differ: listless %d vs list-based %d", len(ab), len(bb))
		}
		for i := range ab {
			if ab[i] != bb[i] {
				t.Fatalf("files differ first at byte %d: %d vs %d", i, ab[i], bb[i])
			}
		}
	}
}

func TestIndependentContigContig(t *testing.T) {
	a, b := runBoth(t, 2, Options{}, func(f *File) {
		rank := f.Proc().Rank()
		data := pattern(rank, 1000)
		if _, err := f.WriteAt(int64(rank)*1000, 1000, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, 1000)
		if _, err := f.ReadAt(int64(rank)*1000, 1000, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("read-back mismatch")
		}
	})
	requireEqualFiles(t, a, b)
	if got := a.Bytes(); len(got) != 2000 {
		t.Fatalf("file size = %d", len(got))
	}
}

func TestIndependentNcMemContigFile(t *testing.T) {
	// nc-c: strided memtype, contiguous file.
	mem, err := datatype.Vector(50, 1, 3, datatype.Double) // 50 doubles every 3
	if err != nil {
		t.Fatal(err)
	}
	a, b := runBoth(t, 2, Options{PackBufSize: 64}, func(f *File) {
		rank := f.Proc().Rank()
		buf := pattern(rank, mem.Extent()+64)
		if _, err := f.WriteAt(int64(rank)*400, 1, mem, buf); err != nil {
			panic(err)
		}
		got := make([]byte, len(buf))
		if _, err := f.ReadAt(int64(rank)*400, 1, mem, got); err != nil {
			panic(err)
		}
		// Compare only typed positions.
		for i := 0; i < 50; i++ {
			off := i * 24
			if !bytes.Equal(got[off:off+8], buf[off:off+8]) {
				panic(fmt.Sprintf("rank %d: block %d mismatch", rank, i))
			}
		}
	})
	requireEqualFiles(t, a, b)
}

func TestIndependentSievingWriteRead(t *testing.T) {
	// c-nc and nc-nc with a small sieve buffer to force many windows.
	for _, P := range []int{1, 2, 4} {
		for _, memNC := range []bool{false, true} {
			name := fmt.Sprintf("P=%d,memNC=%v", P, memNC)
			t.Run(name, func(t *testing.T) {
				const blockcount, blocklen = 37, 16
				a, b := runBoth(t, P, Options{SieveBufSize: 96, PackBufSize: 80}, func(f *File) {
					rank := f.Proc().Rank()
					ft := noncontigTypeP(rank, f.Proc().Size(), blockcount, blocklen)
					if err := f.SetView(0, datatype.Byte, ft); err != nil {
						panic(err)
					}
					d := int64(blockcount * blocklen)
					var memt *datatype.Type
					var buf []byte
					if memNC {
						var err error
						memt, err = datatype.Hvector(blockcount, blocklen, blocklen+8, datatype.Byte)
						if err != nil {
							panic(err)
						}
						buf = pattern(rank, memt.Extent()+8)
					} else {
						memt = datatype.Byte
						buf = pattern(rank, d)
					}
					count := int64(1)
					if !memNC {
						count = d
					}
					if _, err := f.WriteAt(0, count, memt, buf); err != nil {
						panic(err)
					}
					got := make([]byte, len(buf))
					if _, err := f.ReadAt(0, count, memt, got); err != nil {
						panic(err)
					}
					// Typed positions must round-trip.
					if memNC {
						for i := int64(0); i < blockcount; i++ {
							off := i * (blocklen + 8)
							if !bytes.Equal(got[off:off+blocklen], buf[off:off+blocklen]) {
								panic(fmt.Sprintf("rank %d block %d mismatch", rank, i))
							}
						}
					} else if !bytes.Equal(got, buf) {
						panic(fmt.Sprintf("rank %d contig read-back mismatch", rank))
					}
				})
				requireEqualFiles(t, a, b)
				// All ranks interleave: file must be the dense union.
				want := int64(P) * blockcount * blocklen
				if got := int64(len(a.Bytes())); got != want {
					t.Fatalf("file size = %d, want %d", got, want)
				}
			})
		}
	}
}

// noncontigTypeP is noncontigType without the *testing.T.
func noncontigTypeP(p, P int, blockcount, blocklen int64) *datatype.Type {
	dt, err := NoncontigFiletype(p, P, blockcount, blocklen)
	if err != nil {
		panic(err)
	}
	return dt
}

func TestIndependentOffsetInsideFiletype(t *testing.T) {
	// Access at an etype offset that starts mid-filetype.
	a, b := runBoth(t, 1, Options{SieveBufSize: 64}, func(f *File) {
		ft := noncontigTypeP(0, 2, 10, 8) // 10 blocks of 8, stride 16
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		full := pattern(1, 80)
		if _, err := f.WriteAt(0, 80, datatype.Byte, full); err != nil {
			panic(err)
		}
		// Read 24 bytes starting at etype (byte) offset 12 in the view.
		got := make([]byte, 24)
		if _, err := f.ReadAt(12, 24, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, full[12:36]) {
			panic("mid-view read mismatch")
		}
		// Overwrite 10 bytes at view offset 35 and verify.
		repl := pattern(9, 10)
		if _, err := f.WriteAt(35, 10, datatype.Byte, repl); err != nil {
			panic(err)
		}
		back := make([]byte, 10)
		if _, err := f.ReadAt(35, 10, datatype.Byte, back); err != nil {
			panic(err)
		}
		if !bytes.Equal(back, repl) {
			panic("mid-view write-back mismatch")
		}
	})
	requireEqualFiles(t, a, b)
}

func TestIndependentEtypeGranularity(t *testing.T) {
	// etype = double: offsets count doubles, not bytes.
	a, b := runBoth(t, 1, Options{}, func(f *File) {
		ft, err := datatype.Vector(8, 1, 2, datatype.Double)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, ft); err != nil {
			panic(err)
		}
		data := pattern(3, 32) // 4 doubles
		if _, err := f.WriteAt(2, 32, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, 32)
		if _, err := f.ReadAt(2, 32, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("etype-offset round trip failed")
		}
		// The third visible double lives at file offset 2*16=32.
		raw := make([]byte, 8)
		if err := storage.ReadFull(f.sh.b, raw, 32); err != nil {
			panic(err)
		}
		if !bytes.Equal(raw, data[:8]) {
			panic("etype offset landed at the wrong file position")
		}
	})
	requireEqualFiles(t, a, b)
}

func TestIndependentNonMultipleEtypeRejected(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, datatype.Double); err != nil {
			panic(err)
		}
		if _, err := f.WriteAt(0, 12, datatype.Byte, make([]byte, 12)); err == nil {
			panic("12 bytes with double etype must be rejected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessValidation(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 8)
		if _, err := f.WriteAt(-1, 8, datatype.Byte, buf); err == nil {
			panic("negative offset accepted")
		}
		if _, err := f.WriteAt(0, 8, nil, buf); err == nil {
			panic("nil memtype accepted")
		}
		if _, err := f.WriteAt(0, -2, datatype.Byte, buf); err == nil {
			panic("negative count accepted")
		}
		if _, err := f.WriteAt(0, 100, datatype.Byte, buf); err == nil {
			panic("oversized access accepted")
		}
		if n, err := f.WriteAt(0, 0, datatype.Byte, buf); n != 0 || err != nil {
			panic("zero-count write should be a no-op")
		}
		if err := f.SetView(-5, datatype.Byte, datatype.Byte); err == nil {
			panic("negative disp accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(1, func(p *mpi.Proc) {
		if _, err := Open(p, sh, Options{IONodes: 5}); err == nil {
			panic("IONodes > P accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekTellReadWrite(t *testing.T) {
	a, b := runBoth(t, 1, Options{}, func(f *File) {
		data := pattern(0, 64)
		if _, err := f.Write(64, datatype.Byte, data); err != nil {
			panic(err)
		}
		if f.Tell() != 64 {
			panic("pointer did not advance")
		}
		f.SeekTo(16)
		got := make([]byte, 32)
		if _, err := f.Read(32, datatype.Byte, got); err != nil {
			panic(err)
		}
		if f.Tell() != 48 {
			panic("pointer wrong after read")
		}
		if !bytes.Equal(got, data[16:48]) {
			panic("seek/read mismatch")
		}
	})
	requireEqualFiles(t, a, b)
}

func TestCollectiveWriteReadPartitioned(t *testing.T) {
	// The headline scenario: P ranks write the whole file through
	// interleaved fileviews with one collective call each.
	for _, P := range []int{1, 2, 4, 8} {
		for _, nIOP := range []int{0, 1} {
			t.Run(fmt.Sprintf("P=%d,IOP=%d", P, nIOP), func(t *testing.T) {
				const blockcount, blocklen = 64, 8
				a, b := runBoth(t, P, Options{CollBufSize: 256, IONodes: nIOP}, func(f *File) {
					rank := f.Proc().Rank()
					P := f.Proc().Size()
					ft := noncontigTypeP(rank, P, blockcount, blocklen)
					if err := f.SetView(0, datatype.Byte, ft); err != nil {
						panic(err)
					}
					d := int64(blockcount * blocklen)
					data := pattern(rank, d)
					if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
						panic(err)
					}
					got := make([]byte, d)
					if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
						panic(err)
					}
					if !bytes.Equal(got, data) {
						panic(fmt.Sprintf("rank %d collective round trip failed", rank))
					}
				})
				requireEqualFiles(t, a, b)
				// Verify interleaving on the raw file.
				raw := a.Bytes()
				if int64(len(raw)) != int64(P)*blockcount*blocklen {
					t.Fatalf("file size %d", len(raw))
				}
				for r := 0; r < P; r++ {
					want := pattern(r, blockcount*blocklen)
					for blk := int64(0); blk < blockcount; blk++ {
						off := blk*int64(P)*blocklen + int64(r)*blocklen
						if !bytes.Equal(raw[off:off+blocklen], want[blk*blocklen:(blk+1)*blocklen]) {
							t.Fatalf("rank %d block %d landed wrong", r, blk)
						}
					}
				}
			})
		}
	}
}

func TestCollectiveFullCoverageSkipsPreRead(t *testing.T) {
	const P = 4
	for _, eng := range []Engine{Listless, ListBased} {
		be := storage.NewInstrumented(storage.NewMem())
		sh := NewShared(be)
		var skipped int64
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 512})
			if err != nil {
				panic(err)
			}
			ft := noncontigTypeP(p.Rank(), P, 32, 16)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			d := int64(32 * 16)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d)); err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				skipped = f.Stats.PreReadsSkipped
			}
			f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		if skipped == 0 {
			t.Errorf("%v: full-coverage write performed pre-reads", eng)
		}
		if st := be.Stats(); st.Reads != 0 {
			t.Errorf("%v: %d backend reads during fully covering collective write", eng, st.Reads)
		}
	}
}

func TestCollectivePartialCoverageReadsFirst(t *testing.T) {
	// Only half the ranks write: windows are not covered, pre-reads must
	// happen, and existing file content in the gaps must survive.
	const P = 4
	for _, eng := range []Engine{Listless, ListBased} {
		base := storage.NewMem()
		orig := pattern(42, 4*32*16)
		base.WriteAt(orig, 0)
		sh := NewShared(base)
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 512})
			if err != nil {
				panic(err)
			}
			ft := noncontigTypeP(p.Rank(), P, 32, 16)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			var d int64
			var data []byte
			if p.Rank()%2 == 0 {
				d = 32 * 16
				data = pattern(p.Rank(), d)
			}
			if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		raw := base.Bytes()
		for r := 0; r < P; r++ {
			want := pattern(r, 32*16)
			for blk := int64(0); blk < 32; blk++ {
				off := blk*int64(P)*16 + int64(r)*16
				var exp []byte
				if r%2 == 0 {
					exp = want[blk*16 : (blk+1)*16]
				} else {
					exp = orig[off : off+16] // untouched
				}
				if !bytes.Equal(raw[off:off+16], exp) {
					t.Fatalf("%v: rank %d block %d corrupted", eng, r, blk)
				}
			}
		}
	}
}

func TestCollectiveDifferingDisplacements(t *testing.T) {
	// Each rank uses a *different* displacement: the mergeview cannot be
	// built; the listless engine must fall back and stay correct.
	const P = 3
	a, b := runBoth(t, P, Options{CollBufSize: 128}, func(f *File) {
		rank := f.Proc().Rank()
		ft, err := datatype.Hvector(16, 8, int64(P)*8, datatype.Byte)
		if err != nil {
			panic(err)
		}
		ftv, err := datatype.Resized(ft, 0, 16*int64(P)*8)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(int64(rank)*8, datatype.Byte, ftv); err != nil {
			panic(err)
		}
		d := int64(16 * 8)
		data := pattern(rank, d)
		if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, d)
		if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("differing-disp round trip failed")
		}
	})
	requireEqualFiles(t, a, b)
}

func TestCollectiveNcMemtype(t *testing.T) {
	// nc-nc collective: strided memtype and strided fileview.
	const P = 4
	memt, err := datatype.Hvector(32, 16, 24, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	a, b := runBoth(t, P, Options{CollBufSize: 300}, func(f *File) {
		rank := f.Proc().Rank()
		ft := noncontigTypeP(rank, P, 32, 16)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		buf := pattern(rank, memt.Extent()+16)
		if _, err := f.WriteAtAll(0, 1, memt, buf); err != nil {
			panic(err)
		}
		got := make([]byte, len(buf))
		if _, err := f.ReadAtAll(0, 1, memt, got); err != nil {
			panic(err)
		}
		for i := int64(0); i < 32; i++ {
			off := i * 24
			if !bytes.Equal(got[off:off+16], buf[off:off+16]) {
				panic(fmt.Sprintf("rank %d: nc-nc block %d mismatch", rank, i))
			}
		}
	})
	requireEqualFiles(t, a, b)
}

func TestCollectiveSomeRanksIdle(t *testing.T) {
	// Ranks with count 0 still participate collectively.
	const P = 4
	a, b := runBoth(t, P, Options{}, func(f *File) {
		rank := f.Proc().Rank()
		ft := noncontigTypeP(rank, P, 8, 8)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		var d int64
		var data []byte
		if rank == 1 {
			d = 64
			data = pattern(rank, 64)
		}
		if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, max(int(d), 1))
		if _, err := f.ReadAtAll(0, d, datatype.Byte, got[:d]); err != nil {
			panic(err)
		}
		if rank == 1 && !bytes.Equal(got[:d], data) {
			panic("active rank round trip failed")
		}
	})
	requireEqualFiles(t, a, b)
}

func TestCollectiveAllIdle(t *testing.T) {
	a, b := runBoth(t, 3, Options{}, func(f *File) {
		if _, err := f.WriteAtAll(0, 0, datatype.Byte, nil); err != nil {
			panic(err)
		}
		if _, err := f.ReadAtAll(0, 0, datatype.Byte, nil); err != nil {
			panic(err)
		}
	})
	requireEqualFiles(t, a, b)
}

func TestCollectiveMultipleRounds(t *testing.T) {
	// Several collective writes at increasing offsets (the BTIO pattern:
	// one write per time step), pointer-based.
	const P = 4
	const steps = 5
	a, b := runBoth(t, P, Options{CollBufSize: 1024}, func(f *File) {
		rank := f.Proc().Rank()
		ft := noncontigTypeP(rank, P, 16, 32)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		d := int64(16 * 32)
		for s := 0; s < steps; s++ {
			data := pattern(rank+s*17, d)
			if _, err := f.WriteAll(d, datatype.Byte, data); err != nil {
				panic(err)
			}
		}
		if f.Tell() != d*steps {
			panic("pointer wrong after collective writes")
		}
		f.SeekTo(0)
		for s := 0; s < steps; s++ {
			want := pattern(rank+s*17, d)
			got := make([]byte, d)
			if _, err := f.ReadAll(d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, want) {
				panic(fmt.Sprintf("rank %d step %d mismatch", rank, s))
			}
		}
	})
	requireEqualFiles(t, a, b)
}

func TestListlessAblations(t *testing.T) {
	// Disabled view cache and merge check must stay correct.
	for _, o := range []Options{
		{Engine: Listless, DisableViewCache: true},
		{Engine: Listless, DisableMergeCheck: true},
		{Engine: Listless, DisableViewCache: true, DisableMergeCheck: true},
	} {
		const P = 4
		be := storage.NewMem()
		sh := NewShared(be)
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, o)
			if err != nil {
				panic(err)
			}
			ft := noncontigTypeP(p.Rank(), P, 16, 16)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			d := int64(16 * 16)
			data := pattern(p.Rank(), d)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			got := make([]byte, d)
			if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic("ablation round trip failed")
			}
			f.Close()
		})
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
	}
}

func TestStatsReflectEngineDifferences(t *testing.T) {
	const P = 4
	const blockcount, blocklen = 256, 8
	stats := map[Engine]Stats{}
	for _, eng := range []Engine{Listless, ListBased} {
		be := storage.NewMem()
		sh := NewShared(be)
		var s Stats
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng})
			if err != nil {
				panic(err)
			}
			ft := noncontigTypeP(p.Rank(), P, blockcount, blocklen)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			d := int64(blockcount * blocklen)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d)); err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				s = f.Stats
			}
			f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		stats[eng] = s
	}
	lb, ll := stats[ListBased], stats[Listless]
	if lb.ListTuples == 0 || lb.ListBytesSent == 0 {
		t.Errorf("list-based stats show no list work: %+v", lb)
	}
	if ll.ListTuples != 0 || ll.ListBytesSent != 0 {
		t.Errorf("listless engine built/sent ol-lists: %+v", ll)
	}
	if ll.ViewBytesSent == 0 {
		t.Errorf("listless engine exchanged no views: %+v", ll)
	}
	if ll.ViewBytesSent >= lb.ListBytesSent {
		t.Errorf("view exchange (%d B) not smaller than list exchange (%d B)",
			ll.ViewBytesSent, lb.ListBytesSent)
	}
}

func TestViewCachePersistsAcrossAccesses(t *testing.T) {
	// ViewBytesSent must not grow with the number of collective accesses
	// when caching is on, and must grow when it is off.
	const P = 2
	for _, disable := range []bool{false, true} {
		be := storage.NewMem()
		sh := NewShared(be)
		var first, after int64
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: Listless, DisableViewCache: disable})
			if err != nil {
				panic(err)
			}
			ft := noncontigTypeP(p.Rank(), P, 8, 8)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			d := int64(64)
			data := pattern(p.Rank(), 64)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				first = f.Stats.ViewBytesSent
			}
			for i := 0; i < 3; i++ {
				if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
					panic(err)
				}
			}
			if p.Rank() == 0 {
				after = f.Stats.ViewBytesSent
			}
			f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		if disable && after <= first {
			t.Error("with caching disabled, view bytes must grow per access")
		}
		if !disable && after != first {
			t.Errorf("with caching enabled, view bytes grew: %d -> %d", first, after)
		}
	}
}
