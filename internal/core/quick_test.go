package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// TestQuickCrossEngineEquivalence drives both engines through randomized
// partitioned write/read scenarios (random block geometry, buffer sizes,
// process counts, offsets, independent and collective) and requires
// byte-identical files and read-back buffers.
func TestQuickCrossEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		P := 1 + r.Intn(4)
		blockcount := int64(1 + r.Intn(40))
		blocklen := int64(1 + r.Intn(48))
		collective := r.Intn(2) == 1
		offEtypes := r.Int63n(max(blockcount*blocklen/2, 1))
		dAll := blockcount*blocklen - offEtypes // bytes each rank moves
		opts := Options{
			SieveBufSize: 32 + r.Intn(512),
			PackBufSize:  16 + r.Intn(256),
			CollBufSize:  64 + r.Intn(1024),
		}
		if r.Intn(2) == 1 && P > 1 {
			opts.IONodes = 1 + r.Intn(P)
		}

		var files [2][]byte
		var reads [2][][]byte
		for ei, eng := range []Engine{Listless, ListBased} {
			be := storage.NewMem()
			sh := NewShared(be)
			o := opts
			o.Engine = eng
			readBack := make([][]byte, P)
			_, err := mpi.Run(P, func(p *mpi.Proc) {
				fh, err := Open(p, sh, o)
				if err != nil {
					panic(err)
				}
				ft := noncontigTypeP(p.Rank(), P, blockcount, blocklen)
				if err := fh.SetView(0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				data := pattern(p.Rank()+int(seed%17), dAll)
				var werr error
				if collective {
					_, werr = fh.WriteAtAll(offEtypes, dAll, datatype.Byte, data)
				} else {
					_, werr = fh.WriteAt(offEtypes, dAll, datatype.Byte, data)
				}
				if werr != nil {
					panic(werr)
				}
				got := make([]byte, dAll)
				var rerr error
				if collective {
					_, rerr = fh.ReadAtAll(offEtypes, dAll, datatype.Byte, got)
				} else {
					_, rerr = fh.ReadAt(offEtypes, dAll, datatype.Byte, got)
				}
				if rerr != nil {
					panic(rerr)
				}
				if !bytes.Equal(got, data) {
					panic("round trip mismatch")
				}
				readBack[p.Rank()] = got
				fh.Close()
			})
			if err != nil {
				t.Logf("seed %d engine %v: %v", seed, eng, err)
				return false
			}
			files[ei] = be.Bytes()
			reads[ei] = readBack
		}
		if !bytes.Equal(files[0], files[1]) {
			t.Logf("seed %d: files differ (P=%d bc=%d bl=%d coll=%v off=%d opts=%+v)",
				seed, P, blockcount, blocklen, collective, offEtypes, opts)
			return false
		}
		for rk := 0; rk < P; rk++ {
			if !bytes.Equal(reads[0][rk], reads[1][rk]) {
				t.Logf("seed %d: rank %d read-back differs between engines", seed, rk)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomFiletypesIndependent round-trips random filetype trees
// through independent I/O on a single rank under both engines.
func TestQuickRandomFiletypesIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := datatype.RandomFiletype(r, 3)
		d := 3 * ft.Size() // three filetype instances
		offEtypes := r.Int63n(ft.Size())
		opts := Options{
			SieveBufSize: 16 + r.Intn(128),
			PackBufSize:  16 + r.Intn(64),
		}
		var files [2][]byte
		for ei, eng := range []Engine{Listless, ListBased} {
			be := storage.NewMem()
			sh := NewShared(be)
			o := opts
			o.Engine = eng
			_, err := mpi.Run(1, func(p *mpi.Proc) {
				fh, err := Open(p, sh, o)
				if err != nil {
					panic(err)
				}
				if err := fh.SetView(r.Int63n(8)*0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				data := pattern(int(seed%31), d)
				if _, err := fh.WriteAt(offEtypes, d, datatype.Byte, data); err != nil {
					panic(err)
				}
				got := make([]byte, d)
				if _, err := fh.ReadAt(offEtypes, d, datatype.Byte, got); err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data) {
					panic("random filetype round trip mismatch")
				}
				fh.Close()
			})
			if err != nil {
				t.Logf("seed %d engine %v type %s: %v", seed, eng, ft, err)
				return false
			}
			files[ei] = be.Bytes()
		}
		if !bytes.Equal(files[0], files[1]) {
			t.Logf("seed %d: files differ for type %s", seed, ft)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
