package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestQuickCrossEngineEquivalence drives both engines through randomized
// partitioned write/read scenarios (random block geometry, buffer sizes,
// process counts, offsets, independent and collective) and requires
// byte-identical files and read-back buffers.
func TestQuickCrossEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		P := 1 + r.Intn(4)
		blockcount := int64(1 + r.Intn(40))
		blocklen := int64(1 + r.Intn(48))
		collective := r.Intn(2) == 1
		offEtypes := r.Int63n(max(blockcount*blocklen/2, 1))
		dAll := blockcount*blocklen - offEtypes // bytes each rank moves
		opts := Options{
			SieveBufSize: 32 + r.Intn(512),
			PackBufSize:  16 + r.Intn(256),
			CollBufSize:  64 + r.Intn(1024),
		}
		if r.Intn(2) == 1 && P > 1 {
			opts.IONodes = 1 + r.Intn(P)
		}

		var files [2][]byte
		var reads [2][][]byte
		for ei, eng := range []Engine{Listless, ListBased} {
			be := storage.NewMem()
			sh := NewShared(be)
			o := opts
			o.Engine = eng
			readBack := make([][]byte, P)
			_, err := mpi.Run(P, func(p *mpi.Proc) {
				fh, err := Open(p, sh, o)
				if err != nil {
					panic(err)
				}
				ft := noncontigTypeP(p.Rank(), P, blockcount, blocklen)
				if err := fh.SetView(0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				data := pattern(p.Rank()+int(seed%17), dAll)
				var werr error
				if collective {
					_, werr = fh.WriteAtAll(offEtypes, dAll, datatype.Byte, data)
				} else {
					_, werr = fh.WriteAt(offEtypes, dAll, datatype.Byte, data)
				}
				if werr != nil {
					panic(werr)
				}
				got := make([]byte, dAll)
				var rerr error
				if collective {
					_, rerr = fh.ReadAtAll(offEtypes, dAll, datatype.Byte, got)
				} else {
					_, rerr = fh.ReadAt(offEtypes, dAll, datatype.Byte, got)
				}
				if rerr != nil {
					panic(rerr)
				}
				if !bytes.Equal(got, data) {
					panic("round trip mismatch")
				}
				readBack[p.Rank()] = got
				fh.Close()
			})
			if err != nil {
				t.Logf("seed %d engine %v: %v", seed, eng, err)
				return false
			}
			files[ei] = be.Bytes()
			reads[ei] = readBack
		}
		if !bytes.Equal(files[0], files[1]) {
			t.Logf("seed %d: files differ (P=%d bc=%d bl=%d coll=%v off=%d opts=%+v)",
				seed, P, blockcount, blocklen, collective, offEtypes, opts)
			return false
		}
		for rk := 0; rk < P; rk++ {
			if !bytes.Equal(reads[0][rk], reads[1][rk]) {
				t.Logf("seed %d: rank %d read-back differs between engines", seed, rk)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomFiletypesIndependent round-trips random filetype trees
// through independent I/O on a single rank under both engines.
func TestQuickRandomFiletypesIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := datatype.RandomFiletype(r, 3)
		d := 3 * ft.Size() // three filetype instances
		offEtypes := r.Int63n(ft.Size())
		opts := Options{
			SieveBufSize: 16 + r.Intn(128),
			PackBufSize:  16 + r.Intn(64),
		}
		var files [2][]byte
		for ei, eng := range []Engine{Listless, ListBased} {
			be := storage.NewMem()
			sh := NewShared(be)
			o := opts
			o.Engine = eng
			_, err := mpi.Run(1, func(p *mpi.Proc) {
				fh, err := Open(p, sh, o)
				if err != nil {
					panic(err)
				}
				if err := fh.SetView(r.Int63n(8)*0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				data := pattern(int(seed%31), d)
				if _, err := fh.WriteAt(offEtypes, d, datatype.Byte, data); err != nil {
					panic(err)
				}
				got := make([]byte, d)
				if _, err := fh.ReadAt(offEtypes, d, datatype.Byte, got); err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data) {
					panic("random filetype round trip mismatch")
				}
				fh.Close()
			})
			if err != nil {
				t.Logf("seed %d engine %v type %s: %v", seed, eng, ft, err)
				return false
			}
			files[ei] = be.Bytes()
		}
		if !bytes.Equal(files[0], files[1]) {
			t.Logf("seed %d: files differ for type %s", seed, ft)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// diffCase is one cell of the differential matrix.
type diffCase struct {
	engine Engine
	tcp    bool
	pooled bool
}

func (c diffCase) String() string {
	tr, mode := "loopback", "unpooled"
	if c.tcp {
		tr = "tcp"
	}
	if c.pooled {
		mode = "pooled"
	}
	return fmt.Sprintf("%s/%s/%s", c.engine, tr, mode)
}

// diffOracle computes the expected file contents of a P-rank collective
// write directly from the datatype's Walk: rank k's data lands, in pack
// order, at the offsets of `base` shifted by k*stride within tiles of
// P*stride bytes.  No engine, flattening, exchange, or storage code is
// involved — this is the flat reference both stacks must match.
func diffOracle(base *datatype.Type, P int, stride, d int64, data [][]byte) []byte {
	var hi int64
	for rank := 0; rank < P; rank++ {
		pos := int64(0)
	tiles:
		for tile := int64(0); ; tile++ {
			origin := tile*int64(P)*stride + int64(rank)*stride
			done := false
			base.Walk(func(off, length int64) {
				if done {
					return
				}
				n := min(length, d-pos)
				fileOff := origin + off
				if end := fileOff + n; end > hi {
					hi = end
				}
				pos += n
				if pos >= d {
					done = true
				}
			})
			if done {
				break tiles
			}
		}
	}
	file := make([]byte, hi)
	for rank := 0; rank < P; rank++ {
		pos := int64(0)
	tiles2:
		for tile := int64(0); ; tile++ {
			origin := tile*int64(P)*stride + int64(rank)*stride
			done := false
			base.Walk(func(off, length int64) {
				if done {
					return
				}
				n := min(length, d-pos)
				copy(file[origin+off:origin+off+n], data[rank][pos:pos+n])
				pos += n
				if pos >= d {
					done = true
				}
			})
			if done {
				break tiles2
			}
		}
	}
	return file
}

// TestQuickDifferentialRandomTrees is the end-to-end differential
// property test: seeded random datatype trees (vector / indexed /
// struct / nested, zero-length blocks, holes) drive a 4-rank collective
// write + read-back across {engine} × {loopback, TCP} × {pooled,
// unpooled}, and every cell's file must match, byte for byte, a flat
// oracle computed from the datatype Walk alone.  Pooled cells run on a
// Checked pool, so a double-put or use-after-put anywhere in the window
// loop, the exchange, or the transport panics the world.
func TestQuickDifferentialRandomTrees(t *testing.T) {
	const P = 4
	seeds := []int64{1, 2, 3, 5, 8, 13}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cells := []diffCase{}
	for _, eng := range []Engine{Listless, ListBased} {
		for _, tcp := range []bool{false, true} {
			for _, pooled := range []bool{true, false} {
				cells = append(cells, diffCase{engine: eng, tcp: tcp, pooled: pooled})
			}
		}
	}
	for _, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		base := datatype.RandomFiletype(r, 3)
		// ValidateFiletype guarantees extent >= trueUB, so tiling rank
		// windows extent apart never overlaps.
		stride := base.Extent()
		d := 2*base.Size() + 1 + r.Int63n(base.Size()) // partial final tile
		data := make([][]byte, P)
		for rank := 0; rank < P; rank++ {
			data[rank] = pattern(rank*7+int(seed), d)
		}
		want := diffOracle(base, P, stride, d, data)

		for _, c := range cells {
			be := storage.NewMem()
			sh := NewShared(be)
			opts := Options{
				Engine:      c.engine,
				CollBufSize: 64 + r.Intn(256),
				DisablePool: !c.pooled,
			}
			if c.pooled {
				opts.Pool = pool.NewChecked()
			}
			var eps []transport.Transport
			if c.tcp {
				var err error
				eps, err = transport.NewLocalTCPWorld(P, transport.TCPConfig{})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				eps = transport.NewLoopback(P)
			}
			_, err := mpi.RunOver(eps, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
				f, err := Open(p, sh, opts)
				if err != nil {
					panic(err)
				}
				defer f.Close()
				st, err := datatype.Struct([]int64{1}, []int64{int64(p.Rank()) * stride}, []*datatype.Type{base})
				if err != nil {
					panic(err)
				}
				view, err := datatype.Resized(st, 0, int64(P)*stride)
				if err != nil {
					panic(err)
				}
				if err := f.SetView(0, datatype.Byte, view); err != nil {
					panic(err)
				}
				if _, err := f.WriteAtAll(0, d, datatype.Byte, data[p.Rank()]); err != nil {
					panic(err)
				}
				got := make([]byte, d)
				if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data[p.Rank()]) {
					panic(fmt.Sprintf("rank %d: read-back mismatch", p.Rank()))
				}
			})
			if err != nil {
				t.Fatalf("seed %d cell %s (base %s): %v", seed, c, base, err)
			}
			got := be.Bytes()
			// File lengths may differ by a zero tail: the oracle ends at
			// the last mapped byte, while a window write-back may round
			// up (and a trailing hole rounds down).
			n := min(len(got), len(want))
			if !bytes.Equal(got[:n], want[:n]) || !allZero(got[n:]) || !allZero(want[n:]) {
				t.Fatalf("seed %d cell %s (base %s, stride %d, d %d): file differs from oracle (%d vs %d bytes)",
					seed, c, base, stride, d, len(got), len(want))
			}
		}
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
