package core

import (
	"fmt"
	"sort"

	"repro/internal/datatype"
	"repro/internal/fotf"
)

// listlessEngine is the paper's contribution (§3).  No ol-lists exist:
// pack/unpack and positioning use flattening-on-the-fly (internal/fotf);
// each process's fileview is exchanged once, as a compact encoded tree,
// when the view is set (fileview caching); and collective writes skip
// the read-modify-write pre-read when the combined fileviews cover the
// written range (the mergeview optimization).
type listlessEngine struct {
	f      *File
	remote []remoteView   // per-rank cached views
	merged *datatype.Type // mergeview struct type (write optimization)
	prog   *fotf.Program  // compiled own-fileview program; nil = walk
}

// remoteView is the cached fileview of another rank, with the compiled
// copy program of that view (shared through the memo cache, so P ranks
// exchanging the same filetype shape compile it once).  cur resumes
// the ascending window sequence of copyIn/copyOut; both run on the
// collective's main goroutine only.
type remoteView struct {
	disp  int64
	ftype *datatype.Type
	fsize int64
	fext  int64
	prog  *fotf.Program
	cur   fotf.Cursor
}

func (e *listlessEngine) setView() error {
	e.remote = nil
	e.merged = nil
	// Compile (or fetch) the fileview's copy program: the memoized,
	// flat-array counterpart of the walk, keyed by the same encoded
	// tree the view registration payload carries.  Replacing the
	// pointer here is the invalidation: the previous view's program
	// ages out of the cache LRU.
	e.prog = e.f.lookupProgram(nil, e.f.v.ftype)
	if !e.f.opts.DisableViewCache {
		e.exchangeViews()
		e.buildMergeview()
	} else {
		e.f.p.Barrier()
	}
	return nil
}

// exchangeViews performs fileview caching: every rank broadcasts its
// encoded (compact, tree-proportional) fileview once.
func (e *listlessEngine) exchangeViews() {
	f := e.f
	payload := e.encodedView()
	f.Stats.ViewBytesSent += int64(len(payload)) // accounted once per SetView
	parts := f.p.Allgather(payload)
	e.remote = make([]remoteView, f.p.Size())
	for r, part := range parts {
		e.remote[r] = decodeView(r, part)
		rv := &e.remote[r]
		rv.prog = f.lookupProgram(part[8:], rv.ftype)
		rv.cur.Reset(rv.prog)
	}
}

func (e *listlessEngine) encodedView() []byte {
	enc := datatype.Encode(e.f.v.ftype)
	payload := make([]byte, 8+len(enc))
	putInt64(payload, e.f.v.disp)
	copy(payload[8:], enc)
	return payload
}

func decodeView(rank int, part []byte) remoteView {
	disp := getInt64(part)
	ft, err := datatype.Decode(part[8:])
	if err != nil {
		panic(fmt.Sprintf("core: rank %d sent undecodable fileview: %v", rank, err))
	}
	return remoteView{disp: disp, ftype: ft, fsize: ft.Size(), fext: ft.Extent()}
}

// buildMergeview constructs the merged fileview of all processes as a
// struct type (the paper's mergetype), valid when all displacements and
// extents agree — the common file-partitioning case.  When they do not,
// merged stays nil and the collective write-coverage check falls back to
// per-rank navigation sums.
func (e *listlessEngine) buildMergeview() {
	disp := e.remote[0].disp
	ext := e.remote[0].fext
	for _, rv := range e.remote[1:] {
		if rv.disp != disp || rv.fext != ext {
			e.merged = nil
			return
		}
	}
	n := len(e.remote)
	blocklens := make([]int64, n)
	displs := make([]int64, n)
	children := make([]*datatype.Type, n)
	for i, rv := range e.remote {
		blocklens[i] = 1
		displs[i] = 0
		children[i] = rv.ftype
	}
	m, err := datatype.Struct(blocklens, displs, children)
	if err != nil {
		e.merged = nil
		return
	}
	// Pin the extent so the mergetype tiles like the filetypes.
	if m.Extent() != ext {
		if m, err = datatype.Resized(m, 0, ext); err != nil {
			e.merged = nil
			return
		}
	}
	// The mergeview coverage check is only sound when the fileviews do
	// not overlap (each file byte visible through at most one view).
	// Validate once at SetView; overlapping views (e.g. every rank using
	// the same default byte view) fall back to the per-AP sums.
	if m.Blocks() > 1<<22 || !nonOverlapping(m) {
		e.merged = nil
		return
	}
	e.merged = m
}

// nonOverlapping reports whether one instance of t covers each byte at
// most once, including across the tiling boundary.
func nonOverlapping(t *datatype.Type) bool {
	type seg struct{ off, end int64 }
	segs := make([]seg, 0, t.Blocks())
	t.Walk(func(off, length int64) {
		segs = append(segs, seg{off, off + length})
	})
	sort.Slice(segs, func(i, j int) bool { return segs[i].off < segs[j].off })
	var prevEnd int64 = -1 << 62
	for _, s := range segs {
		if s.off < prevEnd {
			return false
		}
		prevEnd = s.end
	}
	// Tiling: data must stay within one extent window.
	return prevEnd <= t.Extent() && (len(segs) == 0 || segs[0].off >= 0)
}

// Engine-neutral navigation uses O(depth) flattening-on-the-fly calls.

func (e *listlessEngine) dataToFileStart(d int64) int64 {
	return e.f.v.disp + fotf.StartPos(e.f.v.ftype, d)
}

func (e *listlessEngine) dataToFileEnd(d int64) int64 {
	return e.f.v.disp + fotf.EndPos(e.f.v.ftype, d)
}

func (e *listlessEngine) dataInRange(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	v := &e.f.v
	a := fotf.BufToData(v.ftype, lo-v.disp)
	b := fotf.BufToData(v.ftype, hi-v.disp)
	return b - a
}

func (e *listlessEngine) newMemState(memtype *datatype.Type, count int64) *memState {
	ms := &memState{t: memtype, count: count}
	ms.setProgram(e.f.lookupProgram(nil, memtype))
	return ms
}

func (e *listlessEngine) packUser(dst, buf []byte, mem *memState, skip, n int64) {
	if mem.packProg(dst, buf, skip, n, true) {
		return
	}
	fotf.PackCount(dst[:n], buf, mem.count, mem.t, skip)
}

func (e *listlessEngine) unpackUser(buf, src []byte, mem *memState, skip, n int64) {
	if mem.packProg(src, buf, skip, n, false) {
		return
	}
	fotf.UnpackCount(buf, src[:n], mem.count, mem.t, skip)
}

// listlessViewCursor tracks only a data offset: positioning and
// counting are O(depth) navigation calls, independent of block count.
// With a compiled program live, cur resumes the window sequence through
// the flat group array instead of re-walking the tree per window.
type listlessViewCursor struct {
	e   *listlessEngine
	pos int64 // view-data offset
	cur fotf.Cursor
}

func (e *listlessEngine) seekData(d0 int64) viewCursor {
	vc := &listlessViewCursor{e: e, pos: d0}
	vc.cur.Reset(e.prog)
	return vc
}

func (vc *listlessViewCursor) countUpTo(fileHi int64) int64 {
	v := &vc.e.f.v
	return fotf.BufToData(v.ftype, fileHi-v.disp) - vc.pos
}

// copyWindow copies via the virtual file buffer of §3.2.2: the window is
// addressed as a typed buffer whose origin lies winLo-disp bytes before
// the window start.
func (vc *listlessViewCursor) copyWindow(cb, w []byte, c, winLo int64, write bool) {
	v := &vc.e.f.v
	if vc.cur.Program() != nil {
		vc.cur.CopyRange(cb, w, vc.pos, vc.pos+c, winLo-v.disp, !write)
	} else {
		fotf.CopyRange(cb, w, v.ftype, vc.pos, vc.pos+c, winLo-v.disp, !write)
	}
	vc.pos += c
}

func (vc *listlessViewCursor) eachRun(c int64, emit func(fileOff, dataOff, ln int64)) {
	v := &vc.e.f.v
	each := func(bufOff, dataOff, runLen, stride, n int64) {
		for i := int64(0); i < n; i++ {
			emit(v.disp+bufOff+i*stride, dataOff+i*runLen, runLen)
		}
	}
	if p := vc.cur.Program(); p != nil {
		// The program's coalesced groups emit fewer, longer contiguous
		// runs than the tree walk — same bytes, better sieve batching.
		p.Runs(vc.pos, vc.pos+c, each)
	} else {
		fotf.Runs(v.ftype, vc.pos, vc.pos+c, each)
	}
	vc.pos += c
}

// ---- Collective access: nothing but file data moves (§3.2.3). ----

// listlessAPState navigates this rank's own fileview per window.
type listlessAPState struct {
	e     *listlessEngine
	d0, d int64
}

// apSetup exchanges the encoded views on every access when fileview
// caching is disabled (ablation; still no ol-lists).
func (e *listlessEngine) apSetup(pl *collPlan, d0, d int64) apState {
	if e.f.opts.DisableViewCache {
		e.exchangeViews()
	}
	return &listlessAPState{e: e, d0: d0, d: d}
}

func (s *listlessAPState) cursor(int) apCursor { return s }

func (s *listlessAPState) window(winLo, winHi int64) (a, b int64) {
	return s.dataAtSelf(winLo), s.dataAtSelf(winHi)
}

// dataAtSelf maps an absolute file offset to this rank's access data
// offset, clipped to [d0, d0+d) — O(depth) listless navigation.
func (s *listlessAPState) dataAtSelf(x int64) int64 {
	v := &s.e.f.v
	da := fotf.BufToData(v.ftype, x-v.disp)
	if da < s.d0 {
		return s.d0
	}
	if da > s.d0+s.d {
		return s.d0 + s.d
	}
	return da
}

// listlessIOPState navigates the fileviews cached at SetView.  free is
// a freelist of released windows: the window loop holds at most two in
// flight, so reusing them (with their apA/apB slices) keeps the steady
// state allocation-free.  window and release are both called on the
// collective's main goroutine only.
type listlessIOPState struct {
	e    *listlessEngine
	pl   *collPlan
	free []*listlessIOPWindow
}

func (e *listlessEngine) iopSetup(pl *collPlan) (iopState, error) {
	return &listlessIOPState{e: e, pl: pl}, nil
}

// dataAtRemote maps an absolute file offset to rank r's access data
// offset via its cached fileview, clipped to r's access range.
func (s *listlessIOPState) dataAtRemote(r int, x int64) int64 {
	rv := s.e.remote[r]
	da := fotf.BufToData(rv.ftype, x-rv.disp)
	lo, hi := s.pl.d0s[r], s.pl.d0s[r]+s.pl.ds[r]
	if da < lo {
		return lo
	}
	if da > hi {
		return hi
	}
	return da
}

// listlessIOPWindow holds the per-AP data ranges of one window.
type listlessIOPWindow struct {
	s            *listlessIOPState
	winLo, winHi int64
	apA, apB     []int64
	tot          int64
}

func (s *listlessIOPState) window(winLo, winHi int64) iopWindow {
	P := len(s.pl.ds)
	var w *listlessIOPWindow
	if n := len(s.free); n > 0 {
		w = s.free[n-1]
		s.free = s.free[:n-1]
		w.winLo, w.winHi, w.tot = winLo, winHi, 0
	} else {
		w = &listlessIOPWindow{
			s: s, winLo: winLo, winHi: winHi,
			apA: make([]int64, P), apB: make([]int64, P),
		}
	}
	for r := 0; r < P; r++ {
		if s.pl.ds[r] == 0 {
			// Must be reset explicitly: a recycled window may hold
			// stale ranges here.
			w.apA[r], w.apB[r] = 0, 0
			continue
		}
		a := s.dataAtRemote(r, winLo)
		b := s.dataAtRemote(r, winHi)
		w.apA[r], w.apB[r] = a, b
		w.tot += b - a
	}
	return w
}

func (w *listlessIOPWindow) release() { w.s.free = append(w.s.free, w) }

func (w *listlessIOPWindow) total() int64         { return w.tot }
func (w *listlessIOPWindow) chunkLen(r int) int64 { return w.apB[r] - w.apA[r] }

// covered uses the exact per-AP sum — sound because each byte is written
// at most once through the combined fileviews — confirmed, when the
// mergeview exists, by one navigation call on it (the paper's §3.2.3
// check).  The exact sum guards accesses where some ranks write nothing.
func (w *listlessIOPWindow) covered() bool {
	if w.tot != w.winHi-w.winLo {
		return false
	}
	e := w.s.e
	if e.merged == nil {
		return true
	}
	disp := e.remote[0].disp
	got := fotf.BufToData(e.merged, w.winHi-disp) - fotf.BufToData(e.merged, w.winLo-disp)
	return got == w.winHi-w.winLo
}

func (w *listlessIOPWindow) copyIn(buf []byte, r int, chunk []byte) {
	rv := &w.s.e.remote[r]
	if rv.cur.Program() != nil {
		rv.cur.CopyRange(chunk, buf, w.apA[r], w.apB[r], w.winLo-rv.disp, false)
		return
	}
	fotf.CopyRange(chunk, buf, rv.ftype, w.apA[r], w.apB[r], w.winLo-rv.disp, false)
}

func (w *listlessIOPWindow) copyOut(buf []byte, r int, chunk []byte) {
	rv := &w.s.e.remote[r]
	if rv.cur.Program() != nil {
		rv.cur.CopyRange(chunk, buf, w.apA[r], w.apB[r], w.winLo-rv.disp, true)
		return
	}
	fotf.CopyRange(chunk, buf, rv.ftype, w.apA[r], w.apB[r], w.winLo-rv.disp, true)
}
