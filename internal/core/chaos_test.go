package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// Fault-tolerance harness: seeded multi-rank worlds with injected
// storage faults across engines × window-loop variants × read/write,
// asserting no deadlock (stall watchdog), no goroutine leak, unanimous
// error agreement, and byte-identical contents versus a fault-free
// oracle whenever the faults are survivable.

// watchdogTimeout bounds every faulted world in this file: a protocol
// bug shows up as an ErrStalled diagnostic, not a hung test run.
const watchdogTimeout = 10 * time.Second

// requireAgreement asserts that every rank returned the same
// rank-attributed CollectiveError and returns the agreed value.
func requireAgreement(t *testing.T, label string, errs []error, wantRank int, wantPhase string) {
	t.Helper()
	for r, e := range errs {
		ce, ok := AsCollectiveError(e)
		if !ok {
			t.Fatalf("%s: rank %d returned %v, want a CollectiveError", label, r, e)
		}
		if ce.Rank != wantRank || ce.Phase != wantPhase {
			t.Fatalf("%s: rank %d agreed on {rank %d, phase %s}, want {rank %d, phase %s}",
				label, r, ce.Rank, ce.Phase, wantRank, wantPhase)
		}
		if !errors.Is(e, storage.ErrPermanent) {
			t.Errorf("%s: rank %d error %v lost the permanent classification", label, r, e)
		}
	}
	if !errors.Is(errs[wantRank], storage.ErrInjected) {
		t.Errorf("%s: failing rank's error %v does not wrap the injected fault", label, errs[wantRank])
	}
}

// collOracle runs the same collective write on a clean Mem world and
// returns the resulting file bytes.
func collOracle(t *testing.T, eng Engine, pipeline bool, P int, blockcount, blocklen int64) []byte {
	t.Helper()
	be := storage.NewMem()
	sh := NewShared(be)
	d := blockcount * blocklen
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128, DisableCollPipeline: !pipeline})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
			panic(err)
		}
		if _, err := f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatalf("oracle world: %v", err)
	}
	return be.Bytes()
}

// TestCollectiveErrorAgreement is the acceptance scenario: a 4-rank
// collective read with a permanent fault injected into exactly one
// IOP's file domain must return the same wrapped CollectiveError
// (correct rank, correct phase) on every rank, without deadlock or
// goroutine leak — and an immediately following fault-free collective
// on the same File must produce correct bytes on both engines and both
// window loops.
func TestCollectiveErrorAgreement(t *testing.T) {
	const (
		P          = 4
		blockcount = 32
		blocklen   = 16
		failIOP    = 1
	)
	d := int64(blockcount * blocklen)
	domSize := d // gHi = P*d, split across P IOPs

	for _, eng := range []Engine{Listless, ListBased} {
		for _, pipeline := range []bool{false, true} {
			label := fmt.Sprintf("%v/pipeline=%v", eng, pipeline)
			checkLeaks := testutil.LeakCheck(t)

			fb := storage.NewFaulty(storage.NewMem())
			sh := NewShared(fb)
			errs := make([]error, P)
			reread := make([][]byte, P)
			_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
				f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128, DisableCollPipeline: !pipeline})
				if err != nil {
					panic(err)
				}
				defer f.Close()
				if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
					panic(err)
				}
				data := pattern(p.Rank(), d)
				if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
					panic(err)
				}
				if p.Rank() == 0 {
					// Fault exactly IOP failIOP's file domain.
					fb.FailReadRange(int64(failIOP)*domSize, int64(failIOP+1)*domSize)
				}
				p.Barrier()
				_, errs[p.Rank()] = f.ReadAtAll(0, d, datatype.Byte, make([]byte, d))
				p.Barrier()
				if p.Rank() == 0 {
					fb.Heal()
				}
				p.Barrier()
				// The File must remain usable: a fault-free collective
				// right after the agreed failure.
				got := make([]byte, d)
				if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
					panic(fmt.Sprintf("post-fault read: %v", err))
				}
				if !bytes.Equal(got, data) {
					panic("post-fault collective read returned wrong bytes")
				}
				reread[p.Rank()] = got
			})
			if err != nil {
				t.Fatalf("%s: world error: %v", label, err)
			}
			requireAgreement(t, label, errs, failIOP, PhaseIOPWindow)
			want := collOracle(t, eng, pipeline, P, blockcount, blocklen)
			if !bytes.Equal(fb.Backend.(*storage.Mem).Bytes(), want) {
				t.Errorf("%s: file bytes differ from fault-free oracle", label)
			}
			checkLeaks()
		}
	}
}

// TestFaultCollectiveMatrix runs 4-rank fault propagation across
// read/write × both engines × both window loops, asserting unanimous
// agreement each time and full recovery after healing.
func TestFaultCollectiveMatrix(t *testing.T) {
	const (
		P          = 4
		blockcount = 32
		blocklen   = 16
		failIOP    = 2
	)
	d := int64(blockcount * blocklen)
	domSize := d

	for _, eng := range []Engine{Listless, ListBased} {
		for _, pipeline := range []bool{false, true} {
			for _, write := range []bool{false, true} {
				op := "read"
				if write {
					op = "write"
				}
				label := fmt.Sprintf("%v/pipeline=%v/%s", eng, pipeline, op)
				checkLeaks := testutil.LeakCheck(t)

				fb := storage.NewFaulty(storage.NewMem())
				sh := NewShared(fb)
				errs := make([]error, P)
				_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
					f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128, DisableCollPipeline: !pipeline})
					if err != nil {
						panic(err)
					}
					defer f.Close()
					if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
						panic(err)
					}
					data := pattern(p.Rank(), d)
					if !write {
						// Seed the file so the faulted read has data under it.
						if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
							panic(err)
						}
					}
					if p.Rank() == 0 {
						lo, hi := int64(failIOP)*domSize, int64(failIOP+1)*domSize
						if write {
							fb.FailWriteRange(lo, hi)
						} else {
							fb.FailReadRange(lo, hi)
						}
					}
					p.Barrier()
					if write {
						_, errs[p.Rank()] = f.WriteAtAll(0, d, datatype.Byte, data)
					} else {
						_, errs[p.Rank()] = f.ReadAtAll(0, d, datatype.Byte, make([]byte, d))
					}
					p.Barrier()
					if p.Rank() == 0 {
						fb.Heal()
					}
					p.Barrier()
					// Recovery: the same collective, fault-free, must
					// round-trip on the same File.
					if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
						panic(fmt.Sprintf("post-heal write: %v", err))
					}
					got := make([]byte, d)
					if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
						panic(fmt.Sprintf("post-heal read: %v", err))
					}
					if !bytes.Equal(got, data) {
						panic("post-heal round trip mismatch")
					}
				})
				if err != nil {
					t.Fatalf("%s: world error: %v", label, err)
				}
				requireAgreement(t, label, errs, failIOP, PhaseIOPWindow)
				want := collOracle(t, eng, pipeline, P, blockcount, blocklen)
				if !bytes.Equal(fb.Backend.(*storage.Mem).Bytes(), want) {
					t.Errorf("%s: recovered file differs from fault-free oracle", label)
				}
				checkLeaks()
			}
		}
	}
}

// TestChaosCollectiveHarness runs seeded chaos worlds: a Chaos backend
// injecting only transient faults, wrapped in Resilient so every
// injection is ridden out.  The collectives must succeed and produce
// byte-identical contents versus the fault-free oracle, under the stall
// watchdog and with no goroutine leaks.
func TestChaosCollectiveHarness(t *testing.T) {
	const (
		P          = 4
		blockcount = 24
		blocklen   = 16
	)
	d := int64(blockcount * blocklen)
	var injected int64

	for _, seed := range []int64{1, 7, 42} {
		for _, eng := range []Engine{Listless, ListBased} {
			for _, pipeline := range []bool{false, true} {
				label := fmt.Sprintf("seed=%d/%v/pipeline=%v", seed, eng, pipeline)
				checkLeaks := testutil.LeakCheck(t)

				chaos := storage.NewChaos(seed, storage.NewMem(), storage.TransientOnly())
				be := storage.NewResilient(chaos, storage.ResilientConfig{Seed: seed + 1})
				sh := NewShared(be)
				reads := make([][]byte, P)
				_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
					f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128, DisableCollPipeline: !pipeline})
					if err != nil {
						panic(err)
					}
					defer f.Close()
					if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
						panic(err)
					}
					data := pattern(p.Rank(), d)
					if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
						panic(fmt.Sprintf("chaos write: %v", err))
					}
					got := make([]byte, d)
					if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
						panic(fmt.Sprintf("chaos read: %v", err))
					}
					reads[p.Rank()] = got
				})
				if err != nil {
					t.Fatalf("%s: world error: %v", label, err)
				}
				for r := range reads {
					if !bytes.Equal(reads[r], pattern(r, d)) {
						t.Errorf("%s: rank %d read-back corrupted under chaos", label, r)
					}
				}
				want := collOracle(t, eng, pipeline, P, blockcount, blocklen)
				if !bytes.Equal(chaos.Backend.(*storage.Mem).Bytes(), want) {
					t.Errorf("%s: chaos file differs from fault-free oracle", label)
				}
				injected += chaos.Stats().Total()
				retries, exhausted := be.RetryStats()
				if exhausted != 0 {
					t.Errorf("%s: %d retry budgets exhausted under transient-only chaos", label, exhausted)
				}
				if chaos.Stats().Total() > 0 && retries == 0 {
					t.Errorf("%s: chaos injected %d faults but Resilient recorded no retries",
						label, chaos.Stats().Total())
				}
				checkLeaks()
			}
		}
	}
	if injected == 0 {
		t.Error("chaos harness injected no faults across all seeds; probabilities too low to test anything")
	}
}

// FuzzDecodeCollFault checks the fault-payload decoder against
// arbitrary bytes: never panic, always yield a known phase and a
// non-nil classified cause.
func FuzzDecodeCollFault(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{faultPhaseSetup})
	f.Add([]byte{faultPhaseWindow, faultClassTransient, 'x'})
	f.Add(encodeCollFault(&CollectiveError{Rank: 3, Phase: PhaseIOPWindow, Err: storage.ErrInjected}))
	f.Fuzz(func(t *testing.T, data []byte) {
		phase, cause := decodeCollFault(data)
		switch phase {
		case PhaseIOPSetup, PhaseIOPWindow, phaseUnknown:
		default:
			t.Fatalf("unknown phase %q", phase)
		}
		if cause == nil {
			t.Fatal("nil cause")
		}
		if storage.IsTransient(cause) == storage.IsPermanent(cause) {
			t.Fatalf("cause %v is neither transient nor permanent", cause)
		}
		if cause.Error() == "" {
			t.Fatal("empty cause message")
		}
	})
}
