package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

func TestNonblockingIndependentRoundTrip(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(2, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft := noncontigTypeP(p.Rank(), 2, 32, 16)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		data := pattern(p.Rank(), 512)
		req := f.IWriteAt(0, 512, datatype.Byte, data)
		// Overlap "compute" with the I/O.
		sum := 0
		for i := 0; i < 100000; i++ {
			sum += i
		}
		if n, err := req.Wait(); err != nil || n != 512 {
			panic(err)
		}
		got := make([]byte, 512)
		rreq := f.IReadAt(0, 512, datatype.Byte, got)
		for !rreq.Test() {
		}
		if n, err := rreq.Wait(); err != nil || n != 512 {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("nonblocking round trip mismatch")
		}
		_ = sum
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitCollective(t *testing.T) {
	const P = 4
	for _, eng := range []Engine{Listless, ListBased} {
		be := storage.NewMem()
		sh := NewShared(be)
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			ft := noncontigTypeP(p.Rank(), P, 16, 16)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			data := pattern(p.Rank(), 256)
			wreq := f.WriteAtAllBegin(0, 256, datatype.Byte, data)
			if n, err := wreq.Wait(); err != nil || n != 256 {
				panic(err)
			}
			got := make([]byte, 256)
			rreq := f.ReadAtAllBegin(0, 256, datatype.Byte, got)
			if n, err := rreq.Wait(); err != nil || n != 256 {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic("split collective mismatch")
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
	}
}

func TestNonblockingErrorPropagation(t *testing.T) {
	fb := storage.NewFaulty(storage.NewMem())
	sh := NewShared(fb)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		fb.FailWrites(1)
		req := f.IWriteAt(0, 64, datatype.Byte, make([]byte, 64))
		if _, werr := req.Wait(); !errors.Is(werr, storage.ErrInjected) {
			panic("injected fault not propagated through nonblocking op")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestWaitIsIdempotent(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		req := f.IWriteAt(0, 8, datatype.Byte, make([]byte, 8))
		for i := 0; i < 3; i++ {
			if n, err := req.Wait(); err != nil || n != 8 {
				panic("repeated Wait changed the result")
			}
		}
		if !req.Test() {
			panic("Test false after completion")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
