package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/storage"
)

// Collective error agreement.  A storage fault on one IOP mid-collective
// must not strand its peers: an AP blocked in Recv on the read path would
// deadlock, and undrained tagCollData chunks on the write path would
// corrupt the next collective on the same file.  So after the IOP phase
// every rank votes its local outcome into an allreduce; if any rank
// failed, the lowest failing rank broadcasts its fault, every rank drains
// the in-flight collective traffic, and every rank returns the same
// rank-attributed CollectiveError — leaving mailboxes clean and the File
// usable for subsequent operations.

// Collective phases a fault can be attributed to.
const (
	// PhaseIOPSetup is the IOP's engine setup (the list-based engine
	// receiving and decoding the per-AP access lists).
	PhaseIOPSetup = "iop-setup"
	// PhaseIOPWindow is the IOP window loop over the file domain
	// (pre-reads, exchanges, write-backs).
	PhaseIOPWindow = "iop-window"
	// PhaseEpochSeal is the pre-commit seal round of the epoch protocol
	// (every rank verifying its staged writes on every server).
	PhaseEpochSeal = "epoch-seal"
	// PhaseEpochCommit is rank 0's commit fan-out of the epoch protocol.
	PhaseEpochCommit = "epoch-commit"
	phaseUnknown     = "unknown"
)

// CollectiveError is the agreed outcome of a failed collective access.
// After error agreement, every rank of the world returns a
// CollectiveError with the same failing rank and phase; Err is the
// actual local error on the failing rank and a reconstructed one (same
// message, same transient/permanent classification) everywhere else.
type CollectiveError struct {
	Rank  int    // lowest-ranked process whose local failure won the vote
	Phase string // collective phase that failed (PhaseIOPSetup, PhaseIOPWindow)
	Err   error  // underlying cause
}

func (e *CollectiveError) Error() string {
	return fmt.Sprintf("core: collective %s failed on rank %d: %v", e.Phase, e.Rank, e.Err)
}

func (e *CollectiveError) Unwrap() error { return e.Err }

// remoteErr reconstructs a peer rank's error from its agreed message,
// preserving the transient/permanent classification for errors.Is.
type remoteErr struct {
	msg   string
	class error // storage.ErrTransient or storage.ErrPermanent
}

func (e *remoteErr) Error() string { return e.msg }
func (e *remoteErr) Unwrap() error { return e.class }

// noFailure is the vote of a rank whose phases all succeeded; OpMin over
// the votes yields the lowest failing rank, or noFailure when none.
const noFailure = int64(math.MaxInt64)

// agreeCollective is the error-agreement protocol.  Every rank calls it
// with its local fault (nil when its phases succeeded) once its sends
// for the current collective are complete; it returns nil on every rank
// or an equal CollectiveError on every rank.
func (f *File) agreeCollective(local *CollectiveError) error {
	vote := noFailure
	if local != nil {
		vote = int64(f.p.Rank())
	}
	failRank := f.p.AllreduceInt64(vote, mpi.OpMin)
	if failRank == noFailure {
		return nil
	}
	var payload []byte
	if int64(f.p.Rank()) == failRank {
		payload = encodeCollFault(local)
	}
	payload = f.p.Bcast(int(failRank), payload)
	// Drain the abandoned collective's traffic.  Every send of this
	// collective happened before its sender voted (AP chunk sends and
	// list sends are buffered and precede the IOP phase in program
	// order), and the vote is a full exchange, so by now all of it has
	// been delivered — anything still queued under these tags belongs to
	// this collective and must go.  The caller's trailing Barrier keeps
	// the next collective's sends from arriving before this drain.
	f.p.DrainTag(tagCollData)
	f.p.DrainTag(tagCollList)
	if int64(f.p.Rank()) == failRank {
		return local
	}
	phase, cause := decodeCollFault(payload)
	return &CollectiveError{Rank: int(failRank), Phase: phase, Err: cause}
}

// Wire form of a fault: [phase code, class code, message bytes...].
const (
	faultPhaseSetup  = 1
	faultPhaseWindow = 2
	faultPhaseSeal   = 3
	faultPhaseCommit = 4

	faultClassTransient = 1
	faultClassPermanent = 2
)

func encodeCollFault(ce *CollectiveError) []byte {
	var phase byte
	switch ce.Phase {
	case PhaseIOPSetup:
		phase = faultPhaseSetup
	case PhaseIOPWindow:
		phase = faultPhaseWindow
	case PhaseEpochSeal:
		phase = faultPhaseSeal
	case PhaseEpochCommit:
		phase = faultPhaseCommit
	}
	class := byte(faultClassPermanent)
	if storage.IsTransient(ce.Err) {
		class = faultClassTransient
	}
	msg := ce.Err.Error()
	buf := make([]byte, 2+len(msg))
	buf[0], buf[1] = phase, class
	copy(buf[2:], msg)
	return buf
}

// decodeCollFault decodes a broadcast fault payload.  The payload
// crosses the (simulated) wire, so arbitrary bytes must decode to a
// usable phase and error rather than panic.
func decodeCollFault(buf []byte) (phase string, cause error) {
	if len(buf) < 2 {
		return phaseUnknown, &remoteErr{msg: "unreported remote failure", class: storage.ErrPermanent}
	}
	switch buf[0] {
	case faultPhaseSetup:
		phase = PhaseIOPSetup
	case faultPhaseWindow:
		phase = PhaseIOPWindow
	case faultPhaseSeal:
		phase = PhaseEpochSeal
	case faultPhaseCommit:
		phase = PhaseEpochCommit
	default:
		phase = phaseUnknown
	}
	class := storage.ErrPermanent
	if buf[1] == faultClassTransient {
		class = storage.ErrTransient
	}
	msg := string(buf[2:])
	if msg == "" {
		msg = "unreported remote failure"
	}
	return phase, &remoteErr{msg: msg, class: class}
}

// AsCollectiveError unwraps err to a *CollectiveError, if it is one.
func AsCollectiveError(err error) (*CollectiveError, bool) {
	var ce *CollectiveError
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}
