package bench

import (
	"strings"
	"testing"
)

func TestDatatypeQuickProducesAllShapes(t *testing.T) {
	dc, err := Datatype(Quick)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"vector": false, "indexed": false, "indexed-irregular": false,
		"struct": false, "nested": false,
	}
	for _, pt := range dc.Points {
		if _, ok := want[pt.Shape]; !ok {
			t.Fatalf("unexpected shape %q", pt.Shape)
		}
		want[pt.Shape] = true
		if pt.WalkMBps <= 0 || pt.ProgramMBps <= 0 || pt.MemcpyMBps <= 0 {
			t.Fatalf("%s: non-positive bandwidth %+v", pt.Shape, pt)
		}
		if pt.Groups <= 0 || pt.Blocks <= 0 {
			t.Fatalf("%s: bad shape stats %+v", pt.Shape, pt)
		}
		if int64(pt.Groups) > pt.Blocks {
			t.Fatalf("%s: more groups (%d) than blocks (%d)", pt.Shape, pt.Groups, pt.Blocks)
		}
		if pt.MemcpyGap <= 0 || pt.MemcpyGap > 1.5 {
			t.Fatalf("%s: implausible memcpy gap %.2f", pt.Shape, pt.MemcpyGap)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("shape %s missing from the comparison", name)
		}
	}
	// The regular shapes collapse to a handful of groups; that is the
	// entire point of the compiler, so pin it here rather than in prose.
	for _, pt := range dc.Points {
		if (pt.Shape == "vector" || pt.Shape == "indexed") && pt.Groups > 2 {
			t.Errorf("%s: %d groups, want the progression coalesced to <= 2", pt.Shape, pt.Groups)
		}
	}
	txt := FormatDatatype(dc)
	for name := range want {
		if !strings.Contains(txt, name) {
			t.Fatalf("formatted output missing %s:\n%s", name, txt)
		}
	}
	js, err := DatatypeJSON(dc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "\"prog_vs_walk\"") {
		t.Fatalf("bad JSON payload:\n%s", js)
	}
}
