package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestFiguresQuickProduceAllSeries(t *testing.T) {
	for _, run := range []func(Scale) (Figure, error){Fig5, Fig6, Fig7, Fig8} {
		fig, err := run(Quick)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) != 6 {
			t.Fatalf("%s: %d series, want 6", fig.Name, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s series %s: no points", fig.Name, s.Name)
			}
			for _, p := range s.Points {
				if p.Write <= 0 || p.Read <= 0 {
					t.Fatalf("%s series %s x=%d: non-positive bandwidth", fig.Name, s.Name, p.X)
				}
			}
		}
		txt := FormatFigure(fig)
		if !strings.Contains(txt, fig.Name) || !strings.Contains(txt, "[write]") || !strings.Contains(txt, "[read]") {
			t.Fatalf("%s: bad formatting:\n%s", fig.Name, txt)
		}
		csv := FigureCSV(fig)
		if !strings.HasPrefix(csv, "x,series,") {
			t.Fatalf("%s: bad CSV", fig.Name)
		}
	}
}

func TestListlessNeverLoses(t *testing.T) {
	// The paper's §4.1 observation: "listless I/O never performs worse
	// than list-based I/O."  Check on the quick Figure 7 sweep (the
	// regime where the gap is smallest), with slack for timing noise and
	// one retry: on a single-CPU CI box a descheduled goroutine can make
	// any individual wall-clock point unreliable.
	check := func() []string {
		fig, err := Fig7(Quick)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]Series{}
		for _, s := range fig.Series {
			byName[s.Name] = s
		}
		var violations []string
		for _, pat := range []string{"nc-nc", "nc-c", "c-nc"} {
			ll := byName["listless: "+pat]
			lb := byName["list-based: "+pat]
			for i := range ll.Points {
				if ll.Points[i].Write < 0.5*lb.Points[i].Write {
					violations = append(violations, fmt.Sprintf(
						"%s x=%d: listless write %.1f MB/s < half of list-based %.1f MB/s",
						pat, ll.Points[i].X, ll.Points[i].Write, lb.Points[i].Write))
				}
			}
		}
		return violations
	}
	v := check()
	if len(v) > 0 {
		t.Logf("first pass violations (retrying once): %v", v)
		v = check()
	}
	for _, msg := range v {
		t.Error(msg)
	}
}

func TestSmallBlockGapDirection(t *testing.T) {
	// For 8-byte blocks and large N_block, listless must beat list-based
	// clearly on the non-contiguous-file patterns (Figure 5's regime).
	fig, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	ll := byName["listless: nc-nc"]
	lb := byName["list-based: nc-nc"]
	last := len(ll.Points) - 1
	if ll.Points[last].Write <= lb.Points[last].Write {
		t.Errorf("at N_block=%d listless write %.1f MB/s not above list-based %.1f MB/s",
			ll.Points[last].X, ll.Points[last].Write, lb.Points[last].Write)
	}
}

func TestTable1Values(t *testing.T) {
	rows, err := Table1([]string{"B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DStep != 42448320 || rows[1].DStep != 170061120 {
		t.Fatalf("Table 1 DStep wrong: %+v", rows)
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "42 MB") {
		t.Fatalf("format: %s", txt)
	}
	if _, err := Table1([]string{"Z"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestTable2Values(t *testing.T) {
	rows, err := Table2([]string{"B"}, []int{4, 9, 16, 25})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][2]int64{4: {5202, 2040}, 9: {3468, 1360}, 16: {2601, 1020}, 25: {2080, 816}}
	for _, r := range rows {
		w := want[r.P]
		if r.NBlock != w[0] || r.SBlock != w[1] {
			t.Errorf("P=%d: (%d,%d), want %v", r.P, r.NBlock, r.SBlock, w)
		}
	}
	if s := FormatTable2(rows); !strings.Contains(s, "5202") {
		t.Fatalf("format: %s", s)
	}
}

func TestTable3QuickRuns(t *testing.T) {
	rows, err := Table3(Table3Config{
		Classes: []string{"S"}, Ps: []int{4}, Steps: 2, ComputeIters: 1, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.DTListBase <= 0 || r.DTListless <= 0 || r.RIO <= 0 {
		t.Fatalf("bad row: %+v", r)
	}
	if s := FormatTable3(rows); !strings.Contains(s, "r_io") {
		t.Fatalf("format: %s", s)
	}
}
