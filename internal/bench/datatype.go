package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/datatype"
	"repro/internal/fotf"
)

// Datatype benchmark: the compiled-copy-program gap to memcpy, per
// datatype shape.  For each shape the same windowed pack workload — the
// collective hot path's access pattern: ascending CopyRange windows
// over a tiled typed buffer — runs three ways: through the recursive
// flattening-on-the-fly walk, through the compiled program with a
// resuming cursor, and as a plain memcpy of the same data volume (the
// bandwidth ceiling).  The program-vs-walk ratio is the payoff of
// compiling once, and the gap to memcpy is how much of the ceiling a
// non-contiguous shape still loses to gathering.

// DatatypePoint is one shape's measurement.
type DatatypePoint struct {
	Shape string `json:"shape"`

	// BytesPerInstance and Blocks describe the shape; Groups is the
	// compiled program's group count after coalescing, and CompileNs the
	// one-time compilation cost amortized over the whole run.
	BytesPerInstance int64 `json:"bytes_per_instance"`
	Blocks           int64 `json:"blocks"`
	Groups           int   `json:"groups"`
	CompileNs        int64 `json:"compile_ns"`

	WalkMBps    float64 `json:"walk_mbps"`
	ProgramMBps float64 `json:"program_mbps"`
	MemcpyMBps  float64 `json:"memcpy_mbps"`

	// ProgVsWalk is program/walk bandwidth; MemcpyGap is program/memcpy
	// (1.0 = the program packs at memcpy speed).
	ProgVsWalk float64 `json:"prog_vs_walk"`
	MemcpyGap  float64 `json:"memcpy_gap"`
}

// DatatypeComparison is the full per-shape table, the payload of
// BENCH_datatype.json.
type DatatypeComparison struct {
	WindowBytes int64 `json:"window_bytes"`
	TotalBytes  int64 `json:"total_bytes_per_rep"`
	Reps        int   `json:"reps"`

	Points []DatatypePoint `json:"points"`
}

// datatypeShapes builds the benchmark shapes.  Every shape is chosen so
// the walk cannot collapse it into trivial per-window work (dense-block
// vectors are one memmove either way): the blocks are non-dense or
// irregular, so the walk pays per-block tree work on every window while
// the program pays it once at compile time.
func datatypeShapes(dataBytes int64) ([]struct {
	name string
	dt   *datatype.Type
}, error) {
	shapes := make([]struct {
		name string
		dt   *datatype.Type
	}, 0, 5)
	add := func(name string, dt *datatype.Type, err error) error {
		if err != nil {
			return fmt.Errorf("shape %s: %w", name, err)
		}
		shapes = append(shapes, struct {
			name string
			dt   *datatype.Type
		}{name, dt})
		return nil
	}

	// vector: doubles at a uniform 16-byte pitch, but expressed as an
	// hvector of two-run blocks whose byte stride happens to continue
	// the pitch seamlessly.  The blocks are not dense, so the walk must
	// recurse into every block on every window; the compiler sees the
	// runs line up across the block boundaries and folds the whole
	// instance into one strided group.
	twoRun, err := datatype.Vector(2, 1, 2, datatype.Double)
	if err != nil {
		return nil, err
	}
	vecT, err := datatype.Hvector(dataBytes/twoRun.Size(), 1, 2*16, twoRun)
	if err := add("vector", vecT, err); err != nil {
		return nil, err
	}

	// indexed: single doubles at a regular pitch expressed as an
	// explicit displacement list — the tree carries no regularity, the
	// program rediscovers the arithmetic progression at compile time.
	const idxBlocks = 4096
	blocklens := make([]int64, idxBlocks)
	displs := make([]int64, idxBlocks)
	for i := range blocklens {
		blocklens[i] = 1
		displs[i] = int64(i) * 2
	}
	idxT, err := datatype.Indexed(blocklens, displs, datatype.Double)
	if err := add("indexed", idxT, err); err != nil {
		return nil, err
	}

	// indexed-irregular: small blocks of pseudo-random lengths with
	// pseudo-random holes; nothing coalesces, so this is the shape whose
	// gap to memcpy stays widest.
	r := rand.New(rand.NewSource(5))
	pos := int64(0)
	irrLens := make([]int64, idxBlocks/2)
	irrDispls := make([]int64, idxBlocks/2)
	for i := range irrLens {
		irrLens[i] = int64(1 + r.Intn(3))
		irrDispls[i] = pos
		pos += irrLens[i] + int64(1+r.Intn(3))
	}
	irrT, err := datatype.Indexed(irrLens, irrDispls, datatype.Double)
	if err := add("indexed-irregular", irrT, err); err != nil {
		return nil, err
	}

	// struct: a repeated record of mixed widths with padding holes; the
	// program merges the abutting members of each record and chains the
	// records into larger groups where the pitch allows.
	rec, err := datatype.Struct(
		[]int64{1, 1, 1},
		[]int64{0, 8, 16},
		[]*datatype.Type{datatype.Double, datatype.Int32, datatype.Int16},
	)
	if err != nil {
		return nil, err
	}
	recPad, err := datatype.Resized(rec, 0, 24)
	if err != nil {
		return nil, err
	}
	// Two groups per record survive coalescing (the mid-record hole
	// breaks the chain), so cap the records to stay well under the
	// compiler's group limit at any scale.
	recCount := dataBytes / (4 * recPad.Size())
	if recCount > 16384 {
		recCount = 16384
	}
	recT, err := datatype.Contiguous(recCount, recPad)
	if err := add("struct", recT, err); err != nil {
		return nil, err
	}

	// nested: vectors of vectors of padded doubles — the worst case for
	// per-window recursion depth, flattened once by the compiler.
	inner, err := datatype.Vector(8, 1, 2, datatype.Double)
	if err != nil {
		return nil, err
	}
	mid, err := datatype.Vector(8, 2, 3, inner)
	if err != nil {
		return nil, err
	}
	nested, err := datatype.Vector(dataBytes/(8*mid.Size()), 1, 1, mid)
	if err := add("nested", nested, err); err != nil {
		return nil, err
	}
	return shapes, nil
}

// measureDatatypePoint times the three pack paths over one shape.
func measureDatatypePoint(name string, dt *datatype.Type, winBytes int64, reps int) (DatatypePoint, error) {
	pt := DatatypePoint{
		Shape:            name,
		BytesPerInstance: dt.Size(),
		Blocks:           dt.Blocks(),
	}
	t0 := time.Now()
	prog := fotf.Compile(dt)
	pt.CompileNs = time.Since(t0).Nanoseconds()
	if prog == nil {
		return pt, fmt.Errorf("shape %s declined compilation", name)
	}
	pt.Groups = prog.Groups()

	total := dt.Size()
	span := dt.TrueUB()
	src := make([]byte, span)
	rand.New(rand.NewSource(11)).Read(src)
	dst := make([]byte, total)

	windowed := func(cp func(d0, d1 int64)) {
		for d0 := int64(0); d0 < total; d0 += winBytes {
			d1 := d0 + winBytes
			if d1 > total {
				d1 = total
			}
			cp(d0, d1)
		}
	}
	mbps := func(body func()) float64 {
		body() // warm
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			body()
		}
		sec := time.Since(t0).Seconds()
		return float64(total) * float64(reps) / sec / 1e6
	}

	pt.WalkMBps = mbps(func() {
		windowed(func(d0, d1 int64) {
			fotf.CopyRange(dst[d0:d1], src, dt, d0, d1, 0, true)
		})
	})
	var cur fotf.Cursor
	pt.ProgramMBps = mbps(func() {
		cur.Reset(prog)
		windowed(func(d0, d1 int64) {
			cur.CopyRange(dst[d0:d1], src, d0, d1, 0, true)
		})
	})
	pt.MemcpyMBps = mbps(func() {
		windowed(func(d0, d1 int64) {
			copy(dst[d0:d1], src[d0:d1])
		})
	})
	if pt.WalkMBps > 0 {
		pt.ProgVsWalk = pt.ProgramMBps / pt.WalkMBps
	}
	if pt.MemcpyMBps > 0 {
		pt.MemcpyGap = pt.ProgramMBps / pt.MemcpyMBps
	}
	return pt, nil
}

// Datatype runs the per-shape program/walk/memcpy comparison.
func Datatype(s Scale) (DatatypeComparison, error) {
	dc := DatatypeComparison{
		WindowBytes: 64 << 10,
		TotalBytes:  8 << 20,
		Reps:        24,
	}
	if s == Quick {
		dc.TotalBytes = 1 << 20
		dc.Reps = 6
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	shapes, err := datatypeShapes(dc.TotalBytes)
	if err != nil {
		return DatatypeComparison{}, err
	}
	for _, sh := range shapes {
		pt, err := measureDatatypePoint(sh.name, sh.dt, dc.WindowBytes, dc.Reps)
		if err != nil {
			return DatatypeComparison{}, err
		}
		dc.Points = append(dc.Points, pt)
	}
	return dc, nil
}

// DatatypeJSON renders the comparison as indented JSON, the payload of
// BENCH_datatype.json.
func DatatypeJSON(dc DatatypeComparison) ([]byte, error) {
	return json.MarshalIndent(dc, "", "  ")
}

// FormatDatatype renders the comparison as text.
func FormatDatatype(dc DatatypeComparison) string {
	s := fmt.Sprintf("Datatype copy-program comparison (windowed pack, %dK windows, %dM per rep, %d reps):\n",
		dc.WindowBytes>>10, dc.TotalBytes>>20, dc.Reps)
	for _, pt := range dc.Points {
		s += fmt.Sprintf("  %-18s %8d blocks -> %5d groups  walk %8.0f MB/s  program %8.0f MB/s  memcpy %8.0f MB/s  prog/walk %5.2fx  prog/memcpy %4.0f%%  compile %6dus\n",
			pt.Shape, pt.Blocks, pt.Groups, pt.WalkMBps, pt.ProgramMBps, pt.MemcpyMBps,
			pt.ProgVsWalk, 100*pt.MemcpyGap, pt.CompileNs/1000)
	}
	return s
}
