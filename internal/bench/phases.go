package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/trace"
)

// Phase breakdown: one traced nc-nc collective write+read per engine,
// reported as the trace collector's per-phase summary — where each
// engine's time goes (plan, exchange, window storage I/O, copies) and
// which rank is slowest per phase.  This is the observability
// counterpart of the Figure 5/6 bandwidth numbers: the same workload,
// but explaining the difference instead of just measuring it.

// PhaseBreakdownResult is the traced run of one engine.
type PhaseBreakdownResult struct {
	Engine   core.Engine
	WriteBpp float64 // MB/s per process
	ReadBpp  float64
	Summary  string // the collector's per-phase imbalance summary
}

// phaseConfig returns the traced-run parameters at the given scale.
func phaseConfig(s Scale) noncontig.Config {
	cfg := noncontig.Config{
		P:          4,
		Blockcount: 8192,
		Blocklen:   16,
		Pattern:    noncontig.NcNc,
		Collective: true,
		Reps:       4,
		Verify:     true,
	}
	if s == Quick {
		cfg.Blockcount = 1024
		cfg.Reps = 2
	}
	return cfg
}

// PhaseBreakdown runs the traced collective for both engines.
func PhaseBreakdown(s Scale) ([]PhaseBreakdownResult, error) {
	var out []PhaseBreakdownResult
	for _, eng := range []core.Engine{core.ListBased, core.Listless} {
		cfg := phaseConfig(s)
		cfg.Engine = eng
		cfg.Trace = trace.NewCollector(trace.DefaultBufSize)
		res, err := noncontig.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("phase breakdown (%v): %w", eng, err)
		}
		out = append(out, PhaseBreakdownResult{
			Engine:   eng,
			WriteBpp: res.WriteBpp,
			ReadBpp:  res.ReadBpp,
			Summary:  cfg.Trace.Summary(),
		})
	}
	return out, nil
}

// FormatPhaseBreakdown renders the per-engine summaries as text.
func FormatPhaseBreakdown(s Scale, rs []PhaseBreakdownResult) string {
	cfg := phaseConfig(s)
	out := fmt.Sprintf("Collective phase breakdown (nc-nc, P=%d, N_block=%d, S_block=%dB, reps=%d):\n",
		cfg.P, cfg.Blockcount, cfg.Blocklen, cfg.Reps)
	for _, r := range rs {
		out += fmt.Sprintf("\n%v engine: write %.2f MB/s, read %.2f MB/s per process\n%s",
			r.Engine, r.WriteBpp, r.ReadBpp, r.Summary)
	}
	return out
}
