package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/storage"
)

// Allocation comparison: the zero-copy hot path (buffer pooling +
// vectored storage I/O) against its ablation (DisablePool +
// DisableVectored), for both datatype engines.
//
// Allocations are measured with the repetition-delta method: the same
// nc-nc collective workload runs twice, differing only in repetition
// count, and the difference in runtime.MemStats between the two runs,
// divided by the repetition difference, is the steady-state cost of one
// operation (one collective write plus one collective read).  World
// setup, engine setup, and pool warm-up are identical in both runs and
// cancel in the subtraction.  Storage operations (≈ syscalls against a
// real file: a vectored batch is one preadv/pwritev) come from an
// Instrumented backend the same way.
//
// A second, independent-access table isolates the vectored-I/O win on
// the sieving-bypass direct path: a sparse c-nc access below the sieve
// density threshold issues one storage call per contiguous run without
// vectoring, and one per pack-buffer chunk with it.

// AllocPoint is one (engine, pooled) cell of the collective table.
type AllocPoint struct {
	Engine string `json:"engine"`
	Pooled bool   `json:"pooled"` // pooling + vectored I/O on (the default path)

	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	StorageOpsPerOp float64 `json:"storage_ops_per_op"`

	WriteMBps float64 `json:"write_mbps_per_proc"`
	ReadMBps  float64 `json:"read_mbps_per_proc"`
}

// AllocDirectPoint is one cell of the direct-path (independent, sparse
// c-nc) table: with vectoring the window's runs coalesce into one
// storage call per pack-buffer chunk.
type AllocDirectPoint struct {
	Vectored bool `json:"vectored"`

	StorageOpsPerOp float64 `json:"storage_ops_per_op"`
	DirectRuns      int64   `json:"direct_runs"`      // logical contiguous runs (rank 0)
	VectoredBatches int64   `json:"vectored_batches"` // batched calls issued (rank 0)
	WriteMBps       float64 `json:"write_mbps_per_proc"`
	ReadMBps        float64 `json:"read_mbps_per_proc"`
}

// AllocComparison is the full pooled-vs-unpooled measurement, the
// payload of BENCH_alloc.json.
type AllocComparison struct {
	P           int   `json:"p"`
	Blockcount  int64 `json:"n_block"`
	Blocklen    int64 `json:"s_block"`
	CollBufSize int   `json:"coll_buf_bytes"`
	RepsLow     int   `json:"reps_low"`
	RepsHigh    int   `json:"reps_high"`

	Points []AllocPoint       `json:"points"`
	Direct []AllocDirectPoint `json:"direct"`

	// AllocReduction is, per engine, 1 - pooled/unpooled allocations
	// per op (the headline number: >= 0.5 is the acceptance bar).
	AllocReduction map[string]float64 `json:"alloc_reduction"`
	// SyscallReduction is the direct-path storage-call reduction from
	// vectoring.
	SyscallReduction float64 `json:"syscall_reduction"`
}

func allocConfig(s Scale) AllocComparison {
	// Small windows and many blocks put the workload deep in the
	// steady state: the per-window costs the pool eliminates dominate
	// the per-collective setup that both paths share.
	ac := AllocComparison{
		P:           4,
		Blockcount:  8192,
		Blocklen:    32,
		CollBufSize: 8 << 10,
		RepsLow:     2,
		RepsHigh:    6,
	}
	if s == Quick {
		ac.Blockcount = 4096
		ac.RepsHigh = 4
	}
	return ac
}

// allocRun runs the nc-nc collective workload once with the given
// repetition count and returns the memory and storage tallies.
func allocRun(ac AllocComparison, eng core.Engine, pooled bool, reps int) (mallocs, bytes uint64, storageOps int64, res noncontig.Result, err error) {
	inst := storage.NewInstrumented(storage.NewMem())
	cfg := noncontig.Config{
		P:          ac.P,
		Blockcount: ac.Blockcount,
		Blocklen:   ac.Blocklen,
		Pattern:    noncontig.NcNc,
		Collective: true,
		Engine:     eng,
		Reps:       reps,
		Backend:    inst,
		Options: core.Options{
			CollBufSize:     ac.CollBufSize,
			DisablePool:     !pooled,
			DisableVectored: !pooled,
		},
		StallTimeout: 30 * time.Second,
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err = noncontig.Run(cfg)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, res, fmt.Errorf("alloc bench (%s pooled=%v reps=%d): %w", eng, pooled, reps, err)
	}
	st := inst.Stats()
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc,
		st.Reads + st.Writes, res, nil
}

// runAllocPoint measures one (engine, pooled) cell with the
// repetition-delta method.
func runAllocPoint(ac AllocComparison, eng core.Engine, pooled bool) (AllocPoint, error) {
	pt := AllocPoint{Engine: eng.String(), Pooled: pooled}
	// Warm run: fills the buffer pool and the runtime's internal caches
	// so neither run of the measured pair pays first-use costs.
	if _, _, _, _, err := allocRun(ac, eng, pooled, 1); err != nil {
		return pt, err
	}
	mLow, bLow, oLow, _, err := allocRun(ac, eng, pooled, ac.RepsLow)
	if err != nil {
		return pt, err
	}
	mHigh, bHigh, oHigh, res, err := allocRun(ac, eng, pooled, ac.RepsHigh)
	if err != nil {
		return pt, err
	}
	dr := float64(ac.RepsHigh - ac.RepsLow)
	pt.AllocsPerOp = float64(mHigh-mLow) / dr
	pt.BytesPerOp = float64(bHigh-bLow) / dr
	pt.StorageOpsPerOp = float64(oHigh-oLow) / dr
	pt.WriteMBps = res.WriteBpp
	pt.ReadMBps = res.ReadBpp
	return pt, nil
}

// runAllocDirect measures the direct-path cell: independent sparse c-nc
// below the sieve threshold, with and without vectoring.
func runAllocDirect(ac AllocComparison, vectored bool) (AllocDirectPoint, error) {
	pt := AllocDirectPoint{Vectored: vectored}
	run := func(reps int) (int64, noncontig.Result, error) {
		inst := storage.NewInstrumented(storage.NewMem())
		cfg := noncontig.Config{
			P:          ac.P,
			Blockcount: ac.Blockcount,
			Blocklen:   ac.Blocklen,
			Pattern:    noncontig.CNc,
			Collective: false,
			Engine:     core.Listless,
			Reps:       reps,
			Backend:    inst,
			Options: core.Options{
				// The Figure-4 interleaving has density 1/P; 0.5 puts
				// every access on the direct path.
				SieveDensity:    0.5,
				DisableVectored: !vectored,
			},
			StallTimeout: 30 * time.Second,
		}
		res, err := noncontig.Run(cfg)
		if err != nil {
			return 0, res, fmt.Errorf("alloc bench (direct vectored=%v reps=%d): %w", vectored, reps, err)
		}
		st := inst.Stats()
		return st.Reads + st.Writes, res, nil
	}
	oLow, _, err := run(ac.RepsLow)
	if err != nil {
		return pt, err
	}
	oHigh, res, err := run(ac.RepsHigh)
	if err != nil {
		return pt, err
	}
	pt.StorageOpsPerOp = float64(oHigh-oLow) / float64(ac.RepsHigh-ac.RepsLow)
	pt.DirectRuns = res.Stats.DirectWrites + res.Stats.DirectReads
	pt.VectoredBatches = res.Stats.VectoredWrites + res.Stats.VectoredReads
	pt.WriteMBps = res.WriteBpp
	pt.ReadMBps = res.ReadBpp
	return pt, nil
}

// Alloc runs the full pooled-vs-unpooled comparison.  GC is disabled
// for the duration so sync.Pool contents survive between the paired
// runs and the deltas measure the steady state.
func Alloc(s Scale) (AllocComparison, error) {
	ac := allocConfig(s)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	ac.AllocReduction = make(map[string]float64)
	for _, eng := range []core.Engine{core.Listless, core.ListBased} {
		pooled, err := runAllocPoint(ac, eng, true)
		if err != nil {
			return AllocComparison{}, err
		}
		unpooled, err := runAllocPoint(ac, eng, false)
		if err != nil {
			return AllocComparison{}, err
		}
		ac.Points = append(ac.Points, pooled, unpooled)
		if unpooled.AllocsPerOp > 0 {
			ac.AllocReduction[eng.String()] = 1 - pooled.AllocsPerOp/unpooled.AllocsPerOp
		}
	}
	vec, err := runAllocDirect(ac, true)
	if err != nil {
		return AllocComparison{}, err
	}
	loop, err := runAllocDirect(ac, false)
	if err != nil {
		return AllocComparison{}, err
	}
	ac.Direct = append(ac.Direct, vec, loop)
	if loop.StorageOpsPerOp > 0 {
		ac.SyscallReduction = 1 - vec.StorageOpsPerOp/loop.StorageOpsPerOp
	}
	return ac, nil
}

// AllocJSON renders the comparison as indented JSON, the payload of
// BENCH_alloc.json.
func AllocJSON(ac AllocComparison) ([]byte, error) {
	return json.MarshalIndent(ac, "", "  ")
}

// FormatAlloc renders the comparison as text.
func FormatAlloc(ac AllocComparison) string {
	s := fmt.Sprintf("Allocation and syscall comparison (P=%d, N_block=%d, S_block=%dB, collbuf=%dK, nc-nc collective):\n",
		ac.P, ac.Blockcount, ac.Blocklen, ac.CollBufSize>>10)
	for _, pt := range ac.Points {
		mode := "unpooled"
		if pt.Pooled {
			mode = "pooled"
		}
		s += fmt.Sprintf("  %-10s %-9s %9.0f allocs/op  %11.0f B/op  %6.0f storage ops/op  write %7.2f MB/s  read %7.2f MB/s\n",
			pt.Engine, mode, pt.AllocsPerOp, pt.BytesPerOp, pt.StorageOpsPerOp, pt.WriteMBps, pt.ReadMBps)
	}
	for eng, red := range ac.AllocReduction {
		s += fmt.Sprintf("  %s: pooling + vectoring removes %.0f%% of allocations per op\n", eng, 100*red)
	}
	s += "Direct path (independent sparse c-nc, below sieve threshold):\n"
	for _, pt := range ac.Direct {
		mode := "per-run"
		if pt.Vectored {
			mode = "vectored"
		}
		s += fmt.Sprintf("  %-9s %8.0f storage ops/op  (%d runs -> %d batches)  write %7.2f MB/s  read %7.2f MB/s\n",
			mode, pt.StorageOpsPerOp, pt.DirectRuns, pt.VectoredBatches, pt.WriteMBps, pt.ReadMBps)
	}
	if ac.SyscallReduction > 0 {
		s += fmt.Sprintf("  vectoring removes %.1f%% of direct-path storage calls\n", 100*ac.SyscallReduction)
	}
	return s
}
