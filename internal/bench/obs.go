package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Instrumentation-overhead comparison: the same nc-nc collective
// workload with the metrics registry live versus absent (-no-metrics).
// Every hot-path metrics site is a single atomic add on a handle
// registered at setup, so the instrumented run must match the baseline
// in steady-state allocations exactly — the delta is the headline
// number and its acceptance bar is zero.  Wall-clock overhead is
// measured with the same repetition-delta method as the allocation
// suite (the per-collective setup both modes share cancels in the
// subtraction) and the minimum over several trials, since a single
// per-op time at this scale is scheduler noise.

// ObsPoint is one (metrics on/off) cell of the comparison.
type ObsPoint struct {
	Metrics bool `json:"metrics"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpMs        float64 `json:"op_ms"` // one collective write + read, min over trials

	WriteMBps float64 `json:"write_mbps_per_proc"`
	ReadMBps  float64 `json:"read_mbps_per_proc"`
}

// ObsComparison is the full instrumented-vs-baseline measurement, the
// payload of BENCH_obs.json.
type ObsComparison struct {
	P           int   `json:"p"`
	Blockcount  int64 `json:"n_block"`
	Blocklen    int64 `json:"s_block"`
	CollBufSize int   `json:"coll_buf_bytes"`
	RepsLow     int   `json:"reps_low"`
	RepsHigh    int   `json:"reps_high"`
	Trials      int   `json:"trials"`

	Points []ObsPoint `json:"points"`

	// AllocsPerOpDelta is instrumented minus baseline allocations per
	// op; the zero-overhead discipline requires it to be 0.
	AllocsPerOpDelta float64 `json:"allocs_per_op_delta"`
	// OverheadPct is the instrumented wall-clock cost per op relative
	// to the baseline, in percent (negative values are noise).
	OverheadPct float64 `json:"overhead_pct"`
}

func obsConfig(s Scale) ObsComparison {
	// A wide repetition gap (dr = 20 ops) keeps the wall-clock delta an
	// order of magnitude above per-run jitter.
	oc := ObsComparison{
		P:           4,
		Blockcount:  8192,
		Blocklen:    32,
		CollBufSize: 8 << 10,
		RepsLow:     5,
		RepsHigh:    25,
		Trials:      7,
	}
	if s == Quick {
		oc.Blockcount = 4096
		oc.RepsLow = 2
		oc.RepsHigh = 10
		oc.Trials = 3
	}
	return oc
}

// obsRun runs the workload once and returns the memory tallies and the
// elapsed wall clock.  A fresh registry per run keeps the GaugeFunc
// closures from outliving the world they read.
func obsRun(oc ObsComparison, metrics bool, reps int) (mallocs, bytes uint64, elapsed time.Duration, res noncontig.Result, err error) {
	var reg *obs.Registry
	if metrics {
		reg = obs.NewRegistry()
	}
	cfg := noncontig.Config{
		P:          oc.P,
		Blockcount: oc.Blockcount,
		Blocklen:   oc.Blocklen,
		Pattern:    noncontig.NcNc,
		Collective: true,
		Engine:     core.Listless,
		Reps:       reps,
		Backend:    storage.NewMem(),
		Options: core.Options{
			CollBufSize: oc.CollBufSize,
		},
		Metrics:      reg,
		StallTimeout: 30 * time.Second,
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err = noncontig.Run(cfg)
	elapsed = time.Since(t0)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, res, fmt.Errorf("obs bench (metrics=%v reps=%d): %w", metrics, reps, err)
	}
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, elapsed, res, nil
}

// obsTrial measures one low/high repetition pair for one mode.
func obsTrial(oc ObsComparison, metrics bool) (ObsPoint, error) {
	pt := ObsPoint{Metrics: metrics}
	mLow, bLow, tLow, _, err := obsRun(oc, metrics, oc.RepsLow)
	if err != nil {
		return pt, err
	}
	mHigh, bHigh, tHigh, res, err := obsRun(oc, metrics, oc.RepsHigh)
	if err != nil {
		return pt, err
	}
	dr := float64(oc.RepsHigh - oc.RepsLow)
	pt.OpMs = float64(tHigh-tLow) / dr / float64(time.Millisecond)
	pt.AllocsPerOp = float64(mHigh-mLow) / dr
	pt.BytesPerOp = float64(bHigh-bLow) / dr
	pt.WriteMBps = res.WriteBpp
	pt.ReadMBps = res.ReadBpp
	return pt, nil
}

// Obs runs the instrumented-vs-baseline comparison.  The two modes
// alternate within each trial (so heap growth or machine drift cannot
// systematically favor one) and the per-op time is the minimum over the
// trials.  GC is disabled so sync.Pool contents survive between the
// paired runs; an explicit collection between pairs keeps the heap from
// compounding across them.
func Obs(s Scale) (ObsComparison, error) {
	oc := obsConfig(s)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, m := range []bool{true, false} { // warm both modes
		if _, _, _, _, err := obsRun(oc, m, 1); err != nil {
			return ObsComparison{}, err
		}
	}
	var on, off ObsPoint
	for trial := 0; trial < oc.Trials; trial++ {
		order := []bool{true, false}
		if trial%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, m := range order {
			runtime.GC()
			pt, err := obsTrial(oc, m)
			if err != nil {
				return ObsComparison{}, err
			}
			best := &off
			if m {
				best = &on
			}
			if best.OpMs == 0 || pt.OpMs < best.OpMs {
				*best = pt
			}
		}
	}
	oc.Points = append(oc.Points, on, off)
	oc.AllocsPerOpDelta = on.AllocsPerOp - off.AllocsPerOp
	if off.OpMs > 0 {
		oc.OverheadPct = 100 * (on.OpMs - off.OpMs) / off.OpMs
	}
	return oc, nil
}

// ObsJSON renders the comparison as indented JSON, the payload of
// BENCH_obs.json.
func ObsJSON(oc ObsComparison) ([]byte, error) {
	return json.MarshalIndent(oc, "", "  ")
}

// FormatObs renders the comparison as text.
func FormatObs(oc ObsComparison) string {
	s := fmt.Sprintf("Metrics-instrumentation overhead (P=%d, N_block=%d, S_block=%dB, collbuf=%dK, nc-nc collective):\n",
		oc.P, oc.Blockcount, oc.Blocklen, oc.CollBufSize>>10)
	for _, pt := range oc.Points {
		mode := "baseline (-no-metrics)"
		if pt.Metrics {
			mode = "instrumented"
		}
		s += fmt.Sprintf("  %-22s %9.0f allocs/op  %11.0f B/op  %8.2f ms/op  write %7.2f MB/s  read %7.2f MB/s\n",
			mode, pt.AllocsPerOp, pt.BytesPerOp, pt.OpMs, pt.WriteMBps, pt.ReadMBps)
	}
	s += fmt.Sprintf("  allocation delta: %+.0f allocs/op (bar: 0)   wall-clock overhead: %+.1f%%\n",
		oc.AllocsPerOpDelta, oc.OverheadPct)
	return s
}
