package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/storage"
)

// Pipeline ablation: the same collective write, with the IOP window
// loop run strictly sequentially (DisableCollPipeline) and as the
// default double-buffered pipeline, on a bandwidth-throttled backend.
// The workload is c-nc (contiguous memory, non-contiguous file), so the
// AP side is a cheap contiguous pack while the IOP side pays both a
// strided window copy and a throttled write-back — the two costs the
// pipeline overlaps.

// PipelinePoint is the measurement of one window-loop variant.
type PipelinePoint struct {
	Mode              string        `json:"mode"` // "sequential" or "pipelined"
	WriteTime         time.Duration `json:"write_time_ns"`
	WriteMBps         float64       `json:"write_mbps_per_proc"`
	StorageNs         int64         `json:"rank0_storage_ns"`
	ExchangeNs        int64         `json:"rank0_exchange_ns"`
	CopyNs            int64         `json:"rank0_copy_ns"`
	WindowsOverlapped int64         `json:"rank0_windows_overlapped"`
}

// PipelineComparison is the full sequential-vs-pipelined result.
type PipelineComparison struct {
	P           int           `json:"p"`
	Blockcount  int64         `json:"n_block"`
	Blocklen    int64         `json:"s_block"`
	CollBufSize int           `json:"coll_buf_bytes"`
	WriteBW     int64         `json:"write_bw_bytes_per_s"`
	ReadBW      int64         `json:"read_bw_bytes_per_s"`
	Latency     time.Duration `json:"latency_ns"`
	Reps        int           `json:"reps"`

	Sequential PipelinePoint `json:"sequential"`
	Pipelined  PipelinePoint `json:"pipelined"`
	// Speedup is sequential write time over pipelined write time.
	Speedup float64 `json:"speedup"`
}

// pipelineConfig returns the benchmark parameters at the given scale.
func pipelineConfig(s Scale) PipelineComparison {
	pc := PipelineComparison{
		P:           4,
		Blockcount:  16384,
		Blocklen:    16, // 16-byte runs keep the window copy strided and slow
		CollBufSize: 64 << 10,
		// A storage-bound regime: the sequential loop serializes every
		// window write-back, while the pipeline keeps up to two in
		// flight per IOP, overlapped with the exchange.
		WriteBW: 300 << 20,
		ReadBW:  300 << 20,
		Latency: 20 * time.Microsecond,
		Reps:    6,
	}
	if s == Quick {
		pc.Reps = 3
	}
	return pc
}

// runPipelinePoint measures one variant, best-of-repeats on the write
// time (each repeat creates a fresh throttled backend).
func runPipelinePoint(pc PipelineComparison, disable bool, repeats int) (PipelinePoint, error) {
	mode := "pipelined"
	if disable {
		mode = "sequential"
	}
	pt := PipelinePoint{Mode: mode}
	for rep := 0; rep < repeats; rep++ {
		be := storage.NewThrottled(storage.NewMem(), pc.ReadBW, pc.WriteBW, pc.Latency)
		res, err := noncontig.Run(noncontig.Config{
			P:          pc.P,
			Blockcount: pc.Blockcount,
			Blocklen:   pc.Blocklen,
			Pattern:    noncontig.CNc,
			Collective: true,
			Engine:     core.Listless,
			Reps:       pc.Reps,
			Verify:     rep == 0,
			Backend:    be,
			Options: core.Options{
				CollBufSize:         pc.CollBufSize,
				DisableCollPipeline: disable,
			},
		})
		if err != nil {
			return PipelinePoint{}, fmt.Errorf("pipeline bench (%s): %w", mode, err)
		}
		if rep == 0 || res.WriteTime < pt.WriteTime {
			pt.WriteTime = res.WriteTime
			pt.WriteMBps = res.WriteBpp
			pt.StorageNs = res.Stats.StorageNs
			pt.ExchangeNs = res.Stats.ExchangeNs
			pt.CopyNs = res.Stats.CopyNs
			pt.WindowsOverlapped = res.Stats.WindowsOverlapped
		}
	}
	return pt, nil
}

// Pipeline runs the sequential-vs-pipelined collective-write comparison.
func Pipeline(s Scale) (PipelineComparison, error) {
	pc := pipelineConfig(s)
	repeats := 3
	if s == Quick {
		repeats = 2
	}
	seq, err := runPipelinePoint(pc, true, repeats)
	if err != nil {
		return PipelineComparison{}, err
	}
	pipe, err := runPipelinePoint(pc, false, repeats)
	if err != nil {
		return PipelineComparison{}, err
	}
	pc.Sequential, pc.Pipelined = seq, pipe
	if pipe.WriteTime > 0 {
		pc.Speedup = float64(seq.WriteTime) / float64(pipe.WriteTime)
	}
	return pc, nil
}

// PipelineJSON renders the comparison as indented JSON, the payload of
// BENCH_pipeline.json.
func PipelineJSON(pc PipelineComparison) ([]byte, error) {
	return json.MarshalIndent(pc, "", "  ")
}

// FormatPipeline renders the comparison as text.
func FormatPipeline(pc PipelineComparison) string {
	line := func(pt PipelinePoint) string {
		return fmt.Sprintf("  %-10s write %8.2f MB/s per process  (%v; rank-0 storage=%v exchange=%v copy=%v overlapped=%d)",
			pt.Mode, pt.WriteMBps, pt.WriteTime.Round(time.Microsecond),
			time.Duration(pt.StorageNs).Round(time.Microsecond),
			time.Duration(pt.ExchangeNs).Round(time.Microsecond),
			time.Duration(pt.CopyNs).Round(time.Microsecond),
			pt.WindowsOverlapped)
	}
	return fmt.Sprintf(
		"Pipelined collective window loop (P=%d, N_block=%d, S_block=%dB, collbuf=%dK, write-bw=%dMB/s, latency=%v):\n%s\n%s\n  speedup: %.2fx\n",
		pc.P, pc.Blockcount, pc.Blocklen, pc.CollBufSize>>10, pc.WriteBW>>20, pc.Latency,
		line(pc.Sequential), line(pc.Pipelined), pc.Speedup)
}
