// Package bench provides the experiment harness that regenerates every
// table and figure of the paper's evaluation (§4): parameter sweeps over
// the noncontig benchmark for Figures 5–8, the analytic Tables 1–2, and
// the BTIO timing Table 3 — plus text/CSV emitters for the results.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/btio"
	"repro/internal/core"
	"repro/internal/noncontig"
)

// Point is one x-position of a figure: per-process bandwidths for write
// and read.
type Point struct {
	X           int64
	Write, Read float64 // MB/s per process
}

// Series is one curve of a figure (e.g. "listless: nc-nc").
type Series struct {
	Name   string
	Points []Point
}

// Figure is a full reproduction of one paper figure.
type Figure struct {
	Name   string // e.g. "Figure 5"
	Title  string
	XLabel string
	Series []Series
}

// Scale selects experiment sizes: Full matches the paper's parameters;
// Quick shrinks sweeps for CI and unit tests.
type Scale int

// The two scales.
const (
	Full Scale = iota
	Quick
)

func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// sweepValues returns the vector-length sweep of Figures 5 and 6.
func nblockSweep(s Scale) []int64 {
	if s == Quick {
		return []int64{16, 256, 4096}
	}
	return []int64{16, 64, 256, 1024, 4096, 16384}
}

// sblockSweep returns the blocksize sweep of Figure 7.
func sblockSweep(s Scale) []int64 {
	if s == Quick {
		// 4-byte blocks move 32 B per access: per-call overhead and
		// scheduler noise dominate any engine, so the quick sweep (used
		// by assertions in tests) starts at 16 B; the full sweep keeps
		// the paper's 4-byte point.
		return []int64{16, 512, 16384}
	}
	return []int64{4, 16, 64, 256, 1024, 4096, 16384}
}

// figureSeries are the six curves of Figures 5–8.
var figureSeries = []struct {
	engine  core.Engine
	pattern noncontig.Pattern
}{
	{core.ListBased, noncontig.NcNc},
	{core.ListBased, noncontig.NcC},
	{core.ListBased, noncontig.CNc},
	{core.Listless, noncontig.NcNc},
	{core.Listless, noncontig.NcC},
	{core.Listless, noncontig.CNc},
}

func seriesName(e core.Engine, p noncontig.Pattern) string {
	return fmt.Sprintf("%s: %s", e, p)
}

// repsFor picks a repetition count so each point moves enough data for a
// stable wall-clock measurement.
func repsFor(dataPerProc int64, s Scale) int {
	target := int64(8 << 20)
	if s == Quick {
		target = 1 << 20
	}
	r := int(target / dataPerProc)
	if r < 8 {
		r = 8 // floor against wall-clock noise on tiny accesses
	}
	if r > 3000 {
		r = 3000
	}
	return r
}

func runSweep(name, title, xlabel string, xs []int64, s Scale,
	make func(x int64, e core.Engine, p noncontig.Pattern) noncontig.Config) (Figure, error) {
	fig := Figure{Name: name, Title: title, XLabel: xlabel}
	repeats := 2 // best-of-two damps scheduler and GC noise
	if s == Quick {
		repeats = 1
	}
	for _, sv := range figureSeries {
		ser := Series{Name: seriesName(sv.engine, sv.pattern)}
		for _, x := range xs {
			cfg := make(x, sv.engine, sv.pattern)
			var best Point
			for rep := 0; rep < repeats; rep++ {
				res, err := noncontig.Run(cfg)
				if err != nil {
					return Figure{}, fmt.Errorf("%s %s x=%d: %w", name, ser.Name, x, err)
				}
				if res.WriteBpp > best.Write {
					best.Write = res.WriteBpp
				}
				if res.ReadBpp > best.Read {
					best.Read = res.ReadBpp
				}
			}
			best.X = x
			ser.Points = append(ser.Points, best)
		}
		fig.Series = append(fig.Series, ser)
	}
	return fig, nil
}

// Fig5 reproduces Figure 5: independent access bandwidth per process vs
// vector length N_block (S_block = 8 B, P = 2).
func Fig5(s Scale) (Figure, error) {
	return runSweep("Figure 5",
		"Independent write/read Bpp vs N_block (S_block=8B, P=2)",
		"N_block", nblockSweep(s), s,
		func(x int64, e core.Engine, p noncontig.Pattern) noncontig.Config {
			return noncontig.Config{
				P: 2, Blockcount: x, Blocklen: 8,
				Pattern: p, Collective: false, Engine: e,
				Reps: repsFor(x*8, s), Verify: true,
			}
		})
}

// Fig6 reproduces Figure 6: collective access bandwidth per process vs
// vector length N_block (S_block = 8 B, P = 8).
func Fig6(s Scale) (Figure, error) {
	p := 8
	if s == Quick {
		p = 4
	}
	return runSweep("Figure 6",
		fmt.Sprintf("Collective write/read Bpp vs N_block (S_block=8B, P=%d)", p),
		"N_block", nblockSweep(s), s,
		func(x int64, e core.Engine, pt noncontig.Pattern) noncontig.Config {
			return noncontig.Config{
				P: p, Blockcount: x, Blocklen: 8,
				Pattern: pt, Collective: true, Engine: e,
				Reps: repsFor(x*8, s), Verify: true,
			}
		})
}

// Fig7 reproduces Figure 7: independent access bandwidth per process vs
// block size S_block (N_block = 8, P = 2).
func Fig7(s Scale) (Figure, error) {
	return runSweep("Figure 7",
		"Independent write/read Bpp vs S_block (N_block=8, P=2)",
		"S_block [bytes]", sblockSweep(s), s,
		func(x int64, e core.Engine, p noncontig.Pattern) noncontig.Config {
			return noncontig.Config{
				P: 2, Blockcount: 8, Blocklen: x,
				Pattern: p, Collective: false, Engine: e,
				Reps: repsFor(8*x, s), Verify: true,
			}
		})
}

// Fig8 reproduces Figure 8: collective access bandwidth per process vs
// process count P (S_block = 2048 B, N_block = 64).
func Fig8(s Scale) (Figure, error) {
	ps := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if s == Quick {
		ps = []int64{1, 2, 4}
	}
	return runSweep("Figure 8",
		"Collective write/read Bpp vs P (S_block=2048B, N_block=64)",
		"P", ps, s,
		func(x int64, e core.Engine, p noncontig.Pattern) noncontig.Config {
			return noncontig.Config{
				P: int(x), Blockcount: 64, Blocklen: 2048,
				Pattern: p, Collective: true, Engine: e,
				Reps: repsFor(64*2048, s), Verify: true,
			}
		})
}

// Table1Row is one row of Table 1 (BTIO data volumes).
type Table1Row struct {
	Class string
	Grid  int
	DStep int64
	DRun  int64
}

// Table1 reproduces Table 1 for the given classes.
func Table1(classes []string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range classes {
		cl, err := btio.ClassByName(name)
		if err != nil {
			return nil, err
		}
		cfg := btio.Config{Class: cl, P: 4}
		rows = append(rows, Table1Row{
			Class: name, Grid: cl.Grid, DStep: cfg.DStep(), DRun: cfg.DRun(),
		})
	}
	return rows, nil
}

// Table2Row is one row of Table 2 (BTIO access pattern).
type Table2Row struct {
	Class  string
	P      int
	NBlock int64
	SBlock int64
}

// Table2 reproduces Table 2 for the given classes and process counts.
func Table2(classes []string, ps []int) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range classes {
		cl, err := btio.ClassByName(name)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			cfg := btio.Config{Class: cl, P: p}
			nb, err := cfg.NBlock()
			if err != nil {
				return nil, err
			}
			sb, err := cfg.SBlock()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{Class: name, P: p, NBlock: nb, SBlock: sb})
		}
	}
	return rows, nil
}

// Table3Row is one row of Table 3: the BTIO timing comparison.
type Table3Row struct {
	Class      string
	P          int
	Steps      int
	TNoIO      time.Duration // compute-kernel time
	DTListBase time.Duration // Δt_io, list-based
	DTListless time.Duration // Δt_io, listless
	RIO        float64       // Δt_list-based / Δt_listless
	BListBased float64       // effective MB/s
	BListless  float64
}

// Table3Config parameterizes the Table 3 reproduction.
type Table3Config struct {
	Classes      []string
	Ps           []int
	Steps        int // 0 → BTIO default (40)
	ComputeIters int // stencil sweeps per step
	Ghost        int // halo width (BT uses ghosted cells)
	Verify       bool
	// Repeats runs each engine several times and keeps the fastest I/O
	// time, damping GC and scheduler noise (default 2).
	Repeats int
}

// Table3 runs BTIO under both engines for every (class, P) combination.
func Table3(cfg Table3Config) ([]Table3Row, error) {
	if cfg.Ghost == 0 {
		cfg.Ghost = 1
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 2
	}
	var rows []Table3Row
	for _, name := range cfg.Classes {
		cl, err := btio.ClassByName(name)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.Ps {
			row := Table3Row{Class: name, P: p}
			var results [2]btio.Result
			for i, eng := range []core.Engine{core.ListBased, core.Listless} {
				bc := btio.Config{
					Class: cl, P: p, Engine: eng,
					Steps: cfg.Steps, Ghost: cfg.Ghost,
					ComputeIters: cfg.ComputeIters, Verify: cfg.Verify,
				}
				var best btio.Result
				for rep := 0; rep < cfg.Repeats; rep++ {
					res, err := btio.Run(bc)
					if err != nil {
						return nil, fmt.Errorf("table 3 class %s P=%d %v: %w", name, p, eng, err)
					}
					if rep == 0 || res.TIO < best.TIO {
						best = res
					}
				}
				results[i] = best
			}
			row.Steps = results[0].Steps
			row.TNoIO = results[1].TCompute
			row.DTListBase = results[0].TIO
			row.DTListless = results[1].TIO
			if results[1].TIO > 0 {
				row.RIO = float64(results[0].TIO) / float64(results[1].TIO)
			}
			row.BListBased = results[0].Bandwidth
			row.BListless = results[1].Bandwidth
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFigure renders a figure as two aligned text tables (write and
// read panels), one column per series.
func FormatFigure(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.Name, f.Title)
	for pi, panel := range []string{"write", "read"} {
		fmt.Fprintf(&b, "\n[%s] Bpp in MB/s per process\n", panel)
		fmt.Fprintf(&b, "%12s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %18s", s.Name)
		}
		b.WriteByte('\n')
		if len(f.Series) == 0 {
			continue
		}
		for i := range f.Series[0].Points {
			fmt.Fprintf(&b, "%12d", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				v := s.Points[i].Write
				if pi == 1 {
					v = s.Points[i].Read
				}
				fmt.Fprintf(&b, " %18.2f", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FigureCSV renders a figure as CSV with columns
// x,series,write_mbps,read_mbps.
func FigureCSV(f Figure) string {
	var b strings.Builder
	b.WriteString("x,series,write_mbps,read_mbps\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%d,%s,%.3f,%.3f\n", p.X, s.Name, p.Write, p.Read)
		}
	}
	return b.String()
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: BTIO data volume per class\n")
	fmt.Fprintf(&b, "%-6s %-14s %12s %12s\n", "Class", "Grid", "D_step", "D_run")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %dx%dx%d %9.0f MB %9.1f GB\n",
			r.Class, r.Grid, r.Grid, r.Grid,
			float64(r.DStep)/1e6, float64(r.DRun)/1e9)
	}
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: BTIO non-contiguous access pattern (S_block in bytes)\n")
	fmt.Fprintf(&b, "%-6s %4s %10s %10s\n", "Class", "P", "N_block", "S_block")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4d %10d %10d\n", r.Class, r.P, r.NBlock, r.SBlock)
	}
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: BTIO list-based vs listless I/O (times in seconds, B in MB/s)\n")
	fmt.Fprintf(&b, "%-6s %4s %6s %10s %14s %13s %6s %14s %12s\n",
		"Class", "P", "steps", "t_no-io", "dt_list-based", "dt_listless", "r_io", "B_list-based", "B_listless")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4d %6d %10.2f %14.3f %13.3f %6.2f %14.0f %12.0f\n",
			r.Class, r.P, r.Steps,
			r.TNoIO.Seconds(), r.DTListBase.Seconds(), r.DTListless.Seconds(),
			r.RIO, r.BListBased, r.BListless)
	}
	return b.String()
}
