package bench

import (
	"encoding/json"
	"testing"
)

// TestPipelineSpeedup checks that the double-buffered collective window
// loop beats the sequential one by at least 1.3x on the throttled
// backend.  Wall-clock benchmarks are noisy under CI schedulers, so a
// run below the bar is retried before failing.
func TestPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	const want = 1.3
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		pc, err := Pipeline(Quick)
		if err != nil {
			t.Fatal(err)
		}
		if pc.Pipelined.WindowsOverlapped == 0 {
			t.Fatalf("pipelined run overlapped no windows: %+v", pc.Pipelined)
		}
		if pc.Sequential.WindowsOverlapped != 0 {
			t.Fatalf("sequential run reported overlapped windows: %+v", pc.Sequential)
		}
		if pc.Speedup > best {
			best = pc.Speedup
		}
		if best >= want {
			return
		}
		t.Logf("attempt %d: speedup %.2fx below %.1fx, retrying", attempt, pc.Speedup, want)
	}
	t.Errorf("pipelined collective write speedup %.2fx, want >= %.1fx", best, want)
}

// TestPipelineJSON checks the BENCH_pipeline.json payload round-trips.
func TestPipelineJSON(t *testing.T) {
	pc := pipelineConfig(Quick)
	pc.Speedup = 1.5
	pc.Sequential.Mode = "sequential"
	pc.Pipelined.Mode = "pipelined"
	data, err := PipelineJSON(pc)
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineComparison
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Speedup != pc.Speedup || back.P != pc.P || back.Sequential.Mode != "sequential" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
