package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/ioserver"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/storage"
)

// I/O-server tier comparison, two axes:
//
//  1. Throughput: the standard nc-nc collective against local memory,
//     one remote stripe server, and N remote stripe servers — what the
//     network tier costs, and what striping buys back.
//  2. Round-trips: a sparse independent access against the server tier
//     with server-side view evaluation versus shipping raw offset
//     lists — the constant-size-request property of registered views,
//     measured in client round-trips per operation, with the server's
//     view-cache counters alongside.

// ServerPoint is one cell of the throughput axis.
type ServerPoint struct {
	Backend string `json:"backend"` // "local", "1-server", "3-server", ...
	Engine  string `json:"engine"`

	WriteTime time.Duration `json:"write_time_ns"`
	ReadTime  time.Duration `json:"read_time_ns"`
	WriteMBps float64       `json:"write_mbps_per_proc"`
	ReadMBps  float64       `json:"read_mbps_per_proc"`

	// Rounds is the total client round-trips of the measured run
	// (0 for the local backend).
	Rounds int64 `json:"round_trips"`
}

// ViewPoint is one cell of the view-vs-offset-list axis.
type ViewPoint struct {
	Mode string `json:"mode"` // "views" or "offset-lists"

	Ops         int64   `json:"ops"` // write+read operations issued
	Rounds      int64   `json:"round_trips"`
	RoundsPerOp float64 `json:"round_trips_per_op"`

	// Server-side totals across the tier.
	ViewRegistrations int64 `json:"view_registrations"`
	ViewCacheHits     int64 `json:"view_cache_hits"`
	StaleHandles      int64 `json:"stale_handles"`
	ViewReads         int64 `json:"view_reads"`
	ViewWrites        int64 `json:"view_writes"`
	RawReads          int64 `json:"raw_reads"`
	RawWrites         int64 `json:"raw_writes"`
}

// ServerComparison is the full BENCH_server.json payload.
type ServerComparison struct {
	P           int   `json:"p"`
	Blockcount  int64 `json:"n_block"`
	Blocklen    int64 `json:"s_block"`
	Reps        int   `json:"reps"`
	StripeUnit  int64 `json:"stripe_unit_bytes"`
	Servers     int   `json:"servers"`
	SparseRuns  int64 `json:"sparse_runs"`
	SparseBlock int64 `json:"sparse_block_bytes"`
	SparseReps  int   `json:"sparse_reps"`

	Throughput []ServerPoint `json:"throughput"`
	View       []ViewPoint   `json:"view_vs_lists"`

	// ViewRoundTripAdvantage is offset-list round-trips per op over
	// view round-trips per op (> 1 means views win).
	ViewRoundTripAdvantage float64 `json:"view_round_trip_advantage"`
}

func serverConfig(s Scale) ServerComparison {
	sc := ServerComparison{
		P:           4,
		Blockcount:  2048,
		Blocklen:    32,
		Reps:        4,
		StripeUnit:  4096,
		Servers:     3,
		SparseRuns:  4096,
		SparseBlock: 8,
		SparseReps:  5,
	}
	if s == Quick {
		sc.Blockcount = 512
		sc.Reps = 2
		sc.SparseRuns = 2048
		sc.SparseReps = 3
	}
	return sc
}

// startTier launches n in-process stripe servers over Mem backends and
// returns the aggregate client backend plus a shutdown func.
func startTier(unit int64, n int) (*ioserver.Striped, func(), error) {
	geom := storage.StripeGeom{Unit: unit, Count: n}
	addrs := make([]string, n)
	servers := make([]*ioserver.Server, n)
	for i := 0; i < n; i++ {
		srv, err := ioserver.New(ioserver.Config{Backend: storage.NewMem(), Geom: geom, Index: i})
		if err != nil {
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		go srv.Serve(ln)
	}
	agg, err := ioserver.NewStriped(unit, addrs, ioserver.ClientOptions{})
	if err != nil {
		return nil, nil, err
	}
	stop := func() {
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
	return agg, stop, nil
}

// runServerPoint measures one throughput cell, best-of-repeats on the
// write time.
func runServerPoint(sc ServerComparison, servers, repeats int) (ServerPoint, error) {
	name := "local"
	if servers > 0 {
		name = fmt.Sprintf("%d-server", servers)
	}
	pt := ServerPoint{Backend: name, Engine: core.Listless.String()}
	for rep := 0; rep < repeats; rep++ {
		var backend storage.Backend = storage.NewMem()
		var agg *ioserver.Striped
		if servers > 0 {
			var stop func()
			var err error
			agg, stop, err = startTier(sc.StripeUnit, servers)
			if err != nil {
				return ServerPoint{}, err
			}
			defer stop()
			backend = agg
		}
		res, err := noncontig.Run(noncontig.Config{
			P:          sc.P,
			Blockcount: sc.Blockcount,
			Blocklen:   sc.Blocklen,
			Pattern:    noncontig.NcNc,
			Collective: true,
			Engine:     core.Listless,
			Reps:       sc.Reps,
			Verify:     rep == 0,
			Backend:    backend,
			Options: core.Options{
				CollBufSize: 64 << 10,
			},
			StallTimeout: 30 * time.Second,
		})
		if err != nil {
			return ServerPoint{}, fmt.Errorf("server bench (%s): %w", name, err)
		}
		if rep == 0 || res.WriteTime < pt.WriteTime {
			pt.WriteTime = res.WriteTime
			pt.ReadTime = res.ReadTime
			pt.WriteMBps = res.WriteBpp
			pt.ReadMBps = res.ReadBpp
			if agg != nil {
				pt.Rounds = agg.Rounds()
			}
		}
	}
	return pt, nil
}

// runViewPoint measures one round-trip cell: SparseReps rounds of
// open + SetView + sparse write + sparse read of a SparseRuns-run
// vector over a fresh 3-server tier, with server-side view evaluation
// on or off.  Re-registering the same view every round is what
// exercises the server's per-connection view cache.
func runViewPoint(sc ServerComparison, disableViews bool) (ViewPoint, error) {
	mode := "views"
	if disableViews {
		mode = "offset-lists"
	}
	agg, stop, err := startTier(sc.StripeUnit, sc.Servers)
	if err != nil {
		return ViewPoint{}, err
	}
	defer stop()

	ftype, err := datatype.Vector(sc.SparseRuns, sc.SparseBlock, 1024, datatype.Byte)
	if err != nil {
		return ViewPoint{}, err
	}
	d := sc.SparseRuns * sc.SparseBlock
	data := make([]byte, d)
	for i := range data {
		data[i] = byte(i * 131)
	}

	sh := core.NewShared(agg)
	var ops int64
	for rep := 0; rep < sc.SparseReps; rep++ {
		_, err := mpi.Run(1, func(p *mpi.Proc) {
			f, err := core.Open(p, sh, core.Options{
				Engine:          core.Listless,
				SieveDensity:    0.25,
				DisableViewPath: disableViews,
			})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, ftype); err != nil {
				panic(err)
			}
			if _, err := f.WriteAt(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			got := make([]byte, d)
			if _, err := f.ReadAt(0, d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic("server bench: sparse read-back mismatch")
			}
		})
		if err != nil {
			return ViewPoint{}, fmt.Errorf("server bench (%s): %w", mode, err)
		}
		ops += 2
	}

	pt := ViewPoint{Mode: mode, Ops: ops, Rounds: agg.Rounds()}
	pt.RoundsPerOp = float64(pt.Rounds) / float64(ops)
	st, err := agg.ServerStats()
	if err != nil {
		return ViewPoint{}, err
	}
	pt.ViewRegistrations = st.ViewRegistrations
	pt.ViewCacheHits = st.ViewCacheHits
	pt.StaleHandles = st.StaleHandles
	pt.ViewReads = st.ViewReads
	pt.ViewWrites = st.ViewWrites
	pt.RawReads = st.RawReads
	pt.RawWrites = st.RawWrites
	return pt, nil
}

// Server runs the I/O-server tier comparison.
func Server(s Scale) (ServerComparison, error) {
	sc := serverConfig(s)
	repeats := 3
	if s == Quick {
		repeats = 2
	}
	for _, servers := range []int{0, 1, sc.Servers} {
		pt, err := runServerPoint(sc, servers, repeats)
		if err != nil {
			return ServerComparison{}, err
		}
		sc.Throughput = append(sc.Throughput, pt)
	}
	view, err := runViewPoint(sc, false)
	if err != nil {
		return ServerComparison{}, err
	}
	lists, err := runViewPoint(sc, true)
	if err != nil {
		return ServerComparison{}, err
	}
	sc.View = append(sc.View, view, lists)
	if view.RoundsPerOp > 0 {
		sc.ViewRoundTripAdvantage = lists.RoundsPerOp / view.RoundsPerOp
	}
	return sc, nil
}

// ServerJSON renders the comparison as indented JSON, the payload of
// BENCH_server.json.
func ServerJSON(sc ServerComparison) ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// FormatServer renders the comparison as text.
func FormatServer(sc ServerComparison) string {
	s := fmt.Sprintf("I/O-server tier comparison (P=%d, N_block=%d, S_block=%dB, stripe=%dK, nc-nc collective):\n",
		sc.P, sc.Blockcount, sc.Blocklen, sc.StripeUnit>>10)
	for _, pt := range sc.Throughput {
		s += fmt.Sprintf("  %-10s write %8.2f MB/s  read %8.2f MB/s", pt.Backend, pt.WriteMBps, pt.ReadMBps)
		if pt.Rounds > 0 {
			s += fmt.Sprintf("  (%d round-trips)", pt.Rounds)
		}
		s += "\n"
	}
	s += fmt.Sprintf("Sparse direct access, %d runs x %dB, %d write+read rounds over %d servers:\n",
		sc.SparseRuns, sc.SparseBlock, sc.SparseReps, sc.Servers)
	for _, pt := range sc.View {
		s += fmt.Sprintf("  %-13s %6.1f round-trips/op  (%d ops, %d rounds; server: reg %d, cache hits %d, view %dr/%dw, raw %dr/%dw)\n",
			pt.Mode, pt.RoundsPerOp, pt.Ops, pt.Rounds,
			pt.ViewRegistrations, pt.ViewCacheHits, pt.ViewReads, pt.ViewWrites, pt.RawReads, pt.RawWrites)
	}
	if sc.ViewRoundTripAdvantage > 0 {
		s += fmt.Sprintf("  server-side views cost %.2fx fewer round-trips per op than raw offset lists\n",
			sc.ViewRoundTripAdvantage)
	}
	return s
}
