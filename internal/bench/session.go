package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/session"
	"repro/internal/storage"
)

// Session-service comparison: N concurrent multi-rank sessions driving
// interleaved collective write+read rounds through the shared worker
// pool, with and without the per-session write-behind/read-ahead cache,
// against the serialized baseline (the same N uncached runs one after
// another — what a client without the session service gets).  Each
// session owns a latency-throttled backend, so the concurrency win is
// overlap across sessions and the cache win is absorbed round-trips.

// SessionPoint is one cell of the comparison.
type SessionPoint struct {
	Sessions int    `json:"sessions"`
	Mode     string `json:"mode"` // "concurrent" or "serialized"
	Cache    bool   `json:"cache"`

	Elapsed time.Duration `json:"elapsed_ns"`
	AggMBps float64       `json:"aggregate_mbps"`

	// QueueWaitP99 is the worst per-session p99 admission queue wait.
	QueueWaitP99 time.Duration `json:"queue_wait_p99_ns"`
	Rejected     int64         `json:"rejected"`

	// Cache totals across the point's sessions (zero when uncached).
	CacheAbsorbedBytes int64 `json:"cache_absorbed_bytes"`
	CacheFlushes       int64 `json:"cache_flushes"`
	CacheFlushedBytes  int64 `json:"cache_flushed_bytes"`
}

// SessionComparison is the full BENCH_session.json payload.
type SessionComparison struct {
	Ranks      int           `json:"ranks_per_session"`
	Blockcount int64         `json:"n_block"`
	Blocklen   int64         `json:"s_block"`
	Reps       int           `json:"reps"`
	Workers    int           `json:"pool_workers"`
	Latency    time.Duration `json:"backend_latency_ns"`
	WriteBW    int64         `json:"backend_bw_bytes_per_s"`

	Points []SessionPoint `json:"points"`

	// CachedConcurrencySpeedup is the aggregate throughput of the
	// baseline-count concurrent cached sessions over the same count of
	// serialized uncached runs (> 1 means the session service wins).
	CachedConcurrencySpeedup float64 `json:"cached_concurrency_speedup"`
}

func sessionConfig(s Scale) SessionComparison {
	sc := SessionComparison{
		Ranks:      2,
		Blockcount: 512,
		Blocklen:   16,
		Reps:       6,
		Workers:    8,
		Latency:    150 * time.Microsecond,
		WriteBW:    256 << 20,
	}
	if s == Quick {
		sc.Blockcount = 128
		sc.Reps = 3
	}
	return sc
}

func sessionCounts(s Scale) []int {
	if s == Quick {
		return []int{1, 8}
	}
	return []int{1, 8, 32}
}

// sessionBaseline is the session count the serialized baseline and the
// headline speedup use.
const sessionBaseline = 8

// runSessionWorkload drives one session through Reps interleaved
// write+read rounds of the nc-nc pattern and verifies the read-back.
func runSessionWorkload(s *session.Session, sc SessionComparison) error {
	d := sc.Blockcount * sc.Blocklen
	if err := s.Run(func(p *mpi.Proc, f *core.File) error {
		ft, err := noncontig.Filetype(p.Rank(), sc.Ranks, sc.Blockcount, sc.Blocklen)
		if err != nil {
			return err
		}
		return f.SetView(0, datatype.Byte, ft)
	}); err != nil {
		return err
	}
	if c := s.Cache(); c != nil {
		c.Invalidate()
	}
	pat := func(rank int) []byte {
		b := make([]byte, d)
		for i := range b {
			b[i] = byte((rank*131 + i*7 + 13) % 251)
		}
		return b
	}
	bufs := make([][]byte, sc.Ranks)
	for r := range bufs {
		bufs[r] = make([]byte, d)
	}
	for rep := 0; rep < sc.Reps; rep++ {
		if err := s.WriteAtAll(0, d, datatype.Byte, pat); err != nil {
			return err
		}
		if err := s.ReadAtAll(0, d, datatype.Byte, func(rank int) []byte {
			return bufs[rank]
		}); err != nil {
			return err
		}
		for r := range bufs {
			if !bytes.Equal(bufs[r], pat(r)) {
				return fmt.Errorf("session bench: rank %d read-back mismatch at rep %d", r, rep)
			}
		}
	}
	return s.Sync()
}

// runSessionPoint measures one cell: n sessions, cached or not,
// concurrent or strictly one after another.
func runSessionPoint(sc SessionComparison, n int, cached, serialized bool) (SessionPoint, error) {
	mode := "concurrent"
	if serialized {
		mode = "serialized"
	}
	pt := SessionPoint{Sessions: n, Mode: mode, Cache: cached}

	sv := session.NewService(session.Options{Workers: sc.Workers, MaxQueue: 4 * n})
	defer sv.Close()
	open := func(i int) (*session.Session, error) {
		be := storage.NewThrottled(storage.NewMem(), 0, sc.WriteBW, sc.Latency)
		so := session.SessionOptions{Ranks: sc.Ranks, StallTimeout: 30 * time.Second}
		if cached {
			so.Cache = &session.CacheOptions{Checked: true}
		}
		return sv.Open(fmt.Sprintf("%s%d-c%v-%d", mode, n, cached, i), be, so)
	}

	var stats []session.SessionStats
	start := time.Now()
	if serialized {
		for i := 0; i < n; i++ {
			s, err := open(i)
			if err != nil {
				return SessionPoint{}, err
			}
			if err := runSessionWorkload(s, sc); err != nil {
				return SessionPoint{}, err
			}
			st := s.Stats()
			if err := s.Close(); err != nil {
				return SessionPoint{}, err
			}
			stats = append(stats, st)
		}
	} else {
		sessions := make([]*session.Session, n)
		for i := range sessions {
			s, err := open(i)
			if err != nil {
				return SessionPoint{}, err
			}
			sessions[i] = s
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *session.Session) {
				defer wg.Done()
				if err := runSessionWorkload(s, sc); err != nil {
					errs[i] = err
					return
				}
				errs[i] = s.Close()
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return SessionPoint{}, err
			}
		}
		for _, s := range sessions {
			stats = append(stats, s.Stats())
		}
	}
	pt.Elapsed = time.Since(start)

	d := sc.Blockcount * sc.Blocklen
	total := int64(n) * int64(sc.Ranks) * d * 2 * int64(sc.Reps)
	pt.AggMBps = float64(total) / 1e6 / pt.Elapsed.Seconds()
	for _, st := range stats {
		if w := time.Duration(st.QueueWait.Quantile(0.99)); w > pt.QueueWaitP99 {
			pt.QueueWaitP99 = w
		}
		pt.Rejected += st.Rejected
		pt.CacheAbsorbedBytes += st.Cache.AbsorbedBytes
		pt.CacheFlushes += st.Cache.Flushes
		pt.CacheFlushedBytes += st.Cache.FlushedBytes
	}
	return pt, nil
}

// Session runs the session-service comparison.
func Session(s Scale) (SessionComparison, error) {
	sc := sessionConfig(s)
	for _, n := range sessionCounts(s) {
		for _, cached := range []bool{false, true} {
			pt, err := runSessionPoint(sc, n, cached, false)
			if err != nil {
				return SessionComparison{}, err
			}
			sc.Points = append(sc.Points, pt)
		}
	}
	base, err := runSessionPoint(sc, sessionBaseline, false, true)
	if err != nil {
		return SessionComparison{}, err
	}
	sc.Points = append(sc.Points, base)
	for _, pt := range sc.Points {
		if pt.Mode == "concurrent" && pt.Cache && pt.Sessions == sessionBaseline && base.AggMBps > 0 {
			sc.CachedConcurrencySpeedup = pt.AggMBps / base.AggMBps
		}
	}
	return sc, nil
}

// SessionJSON renders the comparison as indented JSON, the payload of
// BENCH_session.json.
func SessionJSON(sc SessionComparison) ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// FormatSession renders the comparison as text.
func FormatSession(sc SessionComparison) string {
	s := fmt.Sprintf("I/O session service comparison (%d ranks/session, N_block=%d, S_block=%dB, reps=%d, %d pool workers, backend %v + %d MB/s):\n",
		sc.Ranks, sc.Blockcount, sc.Blocklen, sc.Reps, sc.Workers, sc.Latency, sc.WriteBW>>20)
	for _, pt := range sc.Points {
		cache := "uncached"
		if pt.Cache {
			cache = "cached"
		}
		s += fmt.Sprintf("  %2d sessions %-10s %-8s %9.2f MB/s aggregate  (%-8v; queue p99 %v",
			pt.Sessions, pt.Mode, cache, pt.AggMBps,
			pt.Elapsed.Round(time.Microsecond), pt.QueueWaitP99.Round(time.Microsecond))
		if pt.Rejected > 0 {
			s += fmt.Sprintf(", %d rejected", pt.Rejected)
		}
		if pt.Cache {
			s += fmt.Sprintf("; %d KiB absorbed, %d flushes", pt.CacheAbsorbedBytes>>10, pt.CacheFlushes)
		}
		s += ")\n"
	}
	if sc.CachedConcurrencySpeedup > 0 {
		s += fmt.Sprintf("  %d concurrent cached sessions move %.2fx the aggregate bandwidth of %d serialized uncached runs\n",
			sessionBaseline, sc.CachedConcurrencySpeedup, sessionBaseline)
	}
	return s
}
