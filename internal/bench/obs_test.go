package bench

import (
	"encoding/json"
	"math"
	"testing"
)

// TestObsZeroAllocDelta checks the headline claim of the observability
// plane: turning the metrics registry on adds no steady-state
// allocations.  Wall-clock overhead is noise-bound and not asserted
// here (the per-window zero-allocation discipline is pinned exactly by
// the core allocation-regression suite); the repetition-delta
// allocation count can wobble by a few allocs from runtime internals,
// so a run outside the small tolerance is retried before failing.
func TestObsZeroAllocDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	const tolerance = 3.0
	var worst float64
	for attempt := 0; attempt < 3; attempt++ {
		oc, err := Obs(Quick)
		if err != nil {
			t.Fatal(err)
		}
		d := math.Abs(oc.AllocsPerOpDelta)
		if d <= tolerance {
			return
		}
		if d > worst {
			worst = d
		}
		t.Logf("attempt %d: allocation delta %+.1f allocs/op outside ±%.0f, retrying", attempt, oc.AllocsPerOpDelta, tolerance)
	}
	t.Errorf("instrumented-vs-baseline allocation delta %.1f allocs/op, want |delta| <= %.0f", worst, tolerance)
}

// TestObsJSON checks the BENCH_obs.json payload round-trips.
func TestObsJSON(t *testing.T) {
	oc := obsConfig(Quick)
	oc.OverheadPct = 1.25
	oc.Points = []ObsPoint{{Metrics: true, OpMs: 2}, {Metrics: false, OpMs: 1.9}}
	data, err := ObsJSON(oc)
	if err != nil {
		t.Fatal(err)
	}
	var back ObsComparison
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.OverheadPct != oc.OverheadPct || back.P != oc.P || len(back.Points) != 2 || !back.Points[0].Metrics {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
