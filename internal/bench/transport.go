package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Transport comparison: the same nc-nc collective write + read, with the
// exchange phase once over the in-process loopback and once over real
// TCP sockets (every rank a separate endpoint on 127.0.0.1), for both
// datatype engines.  The delta isolates what the wire costs the
// two-phase exchange: framing, syscalls, and scheduling instead of a
// channel handoff.

// TransportPoint is the measurement of one (transport, engine) cell.
type TransportPoint struct {
	Transport string `json:"transport"` // "in-process" or "tcp"
	Engine    string `json:"engine"`

	WriteTime time.Duration `json:"write_time_ns"`
	ReadTime  time.Duration `json:"read_time_ns"`
	WriteMBps float64       `json:"write_mbps_per_proc"`
	ReadMBps  float64       `json:"read_mbps_per_proc"`

	// Rank-0 exchange-phase time and world-wide communication volume.
	ExchangeNs    int64 `json:"rank0_exchange_ns"`
	RecvWaitNs    int64 `json:"recv_wait_ns"`
	Messages      int64 `json:"messages"`
	PayloadBytes  int64 `json:"payload_bytes"`
	WireBytesSent int64 `json:"wire_bytes_sent"`
	WireBytesRecv int64 `json:"wire_bytes_recv"`
}

// TransportComparison is the full in-process-vs-TCP matrix.
type TransportComparison struct {
	P           int   `json:"p"`
	Blockcount  int64 `json:"n_block"`
	Blocklen    int64 `json:"s_block"`
	CollBufSize int   `json:"coll_buf_bytes"`
	Reps        int   `json:"reps"`

	Points []TransportPoint `json:"points"`

	// ExchangeOverhead is, per engine, rank-0 TCP exchange time over
	// rank-0 in-process exchange time.
	ExchangeOverhead map[string]float64 `json:"exchange_overhead"`
}

func transportConfig(s Scale) TransportComparison {
	tc := TransportComparison{
		P:           4,
		Blockcount:  4096,
		Blocklen:    32,
		CollBufSize: 64 << 10,
		Reps:        4,
	}
	if s == Quick {
		tc.Blockcount = 1024
		tc.Reps = 2
	}
	return tc
}

// runTransportPoint measures one cell, best-of-repeats on the write time.
func runTransportPoint(tc TransportComparison, eng core.Engine, overTCP bool, repeats int) (TransportPoint, error) {
	name := "in-process"
	if overTCP {
		name = "tcp"
	}
	pt := TransportPoint{Transport: name, Engine: eng.String()}
	for rep := 0; rep < repeats; rep++ {
		cfg := noncontig.Config{
			P:          tc.P,
			Blockcount: tc.Blockcount,
			Blocklen:   tc.Blocklen,
			Pattern:    noncontig.NcNc,
			Collective: true,
			Engine:     eng,
			Reps:       tc.Reps,
			Verify:     rep == 0,
			Backend:    storage.NewMem(),
			Options: core.Options{
				CollBufSize: tc.CollBufSize,
			},
			StallTimeout: 30 * time.Second,
		}
		var res noncontig.Result
		var err error
		if overTCP {
			var eps []transport.Transport
			eps, err = transport.NewLocalTCPWorld(tc.P, transport.TCPConfig{})
			if err == nil {
				res, err = noncontig.RunOver(cfg, eps)
			}
		} else {
			res, err = noncontig.Run(cfg)
		}
		if err != nil {
			return TransportPoint{}, fmt.Errorf("transport bench (%s/%s): %w", name, eng, err)
		}
		if rep == 0 || res.WriteTime < pt.WriteTime {
			pt.WriteTime = res.WriteTime
			pt.ReadTime = res.ReadTime
			pt.WriteMBps = res.WriteBpp
			pt.ReadMBps = res.ReadBpp
			pt.ExchangeNs = res.Stats.ExchangeNs
			pt.RecvWaitNs = res.Comm.RecvWaitNs
			pt.Messages = res.Comm.Messages
			pt.PayloadBytes = res.Comm.Bytes
			pt.WireBytesSent = res.Comm.WireBytesSent
			pt.WireBytesRecv = res.Comm.WireBytesRecv
		}
	}
	return pt, nil
}

// Transport runs the in-process-vs-TCP exchange comparison for both
// engines.
func Transport(s Scale) (TransportComparison, error) {
	tc := transportConfig(s)
	repeats := 3
	if s == Quick {
		repeats = 2
	}
	tc.ExchangeOverhead = make(map[string]float64)
	for _, eng := range []core.Engine{core.Listless, core.ListBased} {
		var inproc, tcp TransportPoint
		var err error
		if inproc, err = runTransportPoint(tc, eng, false, repeats); err != nil {
			return TransportComparison{}, err
		}
		if tcp, err = runTransportPoint(tc, eng, true, repeats); err != nil {
			return TransportComparison{}, err
		}
		tc.Points = append(tc.Points, inproc, tcp)
		if inproc.ExchangeNs > 0 {
			tc.ExchangeOverhead[eng.String()] = float64(tcp.ExchangeNs) / float64(inproc.ExchangeNs)
		}
	}
	return tc, nil
}

// TransportJSON renders the comparison as indented JSON, the payload of
// BENCH_transport.json.
func TransportJSON(tc TransportComparison) ([]byte, error) {
	return json.MarshalIndent(tc, "", "  ")
}

// FormatTransport renders the comparison as text.
func FormatTransport(tc TransportComparison) string {
	s := fmt.Sprintf("Exchange transport comparison (P=%d, N_block=%d, S_block=%dB, collbuf=%dK, nc-nc collective):\n",
		tc.P, tc.Blockcount, tc.Blocklen, tc.CollBufSize>>10)
	for _, pt := range tc.Points {
		s += fmt.Sprintf("  %-10s %-10s write %8.2f MB/s  read %8.2f MB/s  (rank-0 exchange=%v, %d msgs, wire %dB)\n",
			pt.Engine, pt.Transport, pt.WriteMBps, pt.ReadMBps,
			time.Duration(pt.ExchangeNs).Round(time.Microsecond),
			pt.Messages, pt.WireBytesSent)
	}
	for _, eng := range []core.Engine{core.Listless, core.ListBased} {
		if ov, ok := tc.ExchangeOverhead[eng.String()]; ok {
			s += fmt.Sprintf("  %s exchange over TCP costs %.2fx in-process\n", eng, ov)
		}
	}
	return s
}
