package bench

import "testing"

// TestTransportQuick runs the transport matrix at CI scale and checks
// that the wire accounting separates the two transports.
func TestTransportQuick(t *testing.T) {
	tc, err := Transport(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(tc.Points))
	}
	for _, pt := range tc.Points {
		if pt.WriteTime <= 0 || pt.ReadTime <= 0 {
			t.Errorf("%s/%s: missing timings: %+v", pt.Engine, pt.Transport, pt)
		}
		if pt.Messages == 0 || pt.PayloadBytes == 0 {
			t.Errorf("%s/%s: no exchange traffic recorded", pt.Engine, pt.Transport)
		}
		switch pt.Transport {
		case "in-process":
			if pt.WireBytesSent != 0 {
				t.Errorf("%s/in-process: wire bytes %d, want 0", pt.Engine, pt.WireBytesSent)
			}
		case "tcp":
			if pt.WireBytesSent == 0 || pt.WireBytesSent != pt.WireBytesRecv {
				t.Errorf("%s/tcp: wire bytes sent/recv = %d/%d", pt.Engine, pt.WireBytesSent, pt.WireBytesRecv)
			}
		default:
			t.Errorf("unknown transport %q", pt.Transport)
		}
	}
	if len(tc.ExchangeOverhead) != 2 {
		t.Errorf("exchange overhead map: %v", tc.ExchangeOverhead)
	}
}
