// Package pool provides a size-classed byte-buffer pool for the
// collective hot path.  The steady-state window loop allocates the same
// few buffer shapes over and over — exchange chunks, window double
// buffers, wire frame payloads — and pool.Get/Put turns each of those
// into a recycled buffer instead of garbage.
//
// Buffers are plain []byte values with len equal to the requested size
// and cap equal to the size class; ownership is explicit: whoever holds
// a buffer may Put it back exactly once, after which it must not be
// read or written.  Cross-pool traffic is legal — a buffer obtained
// from one pool may be Put into another (this happens when the TCP
// transport's receive pool differs from core's exchange pool); a pool
// is just a parking lot for idle class-sized buffers.
//
// A nil *Pool is valid and degenerates to the unpooled behavior (Get
// allocates, Put drops), which is how the Options.DisablePool ablation
// is implemented without branching at call sites.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Size classes are powers of two from 512 B to 16 MiB, covering the
// exchange-chunk sizes (bounded by CollBufSize, default 1 MiB) through
// the sieve and collective window buffers (default 512 KiB / 1 MiB)
// with headroom for large CollBufSize configurations.  Requests above
// the largest class bypass the pool.
const (
	minClassBits = 9  // 512 B
	maxClassBits = 24 // 16 MiB
	numClasses   = maxClassBits - minClassBits + 1

	// MinBuf / MaxBuf bound the pooled sizes.
	MinBuf = 1 << minClassBits
	MaxBuf = 1 << maxClassBits
)

// Stats counts pool traffic.  Gets = Hits + Misses + Oversize.
type Stats struct {
	Gets       int64 // total Get calls (non-trivial sizes)
	Hits       int64 // Gets served from a class freelist
	Misses     int64 // Gets that allocated a fresh class buffer
	Oversize   int64 // Gets above MaxBuf (always allocate)
	Puts       int64 // buffers returned to a class freelist
	PutDropped int64 // Puts below MinBuf or of foreign shapes (dropped)
	BytesAlloc int64 // bytes allocated by Misses and Oversize
}

// Pool is a sync.Pool-backed buffer pool with power-of-two size
// classes.  The zero value is ready to use.  Safe for concurrent use.
type Pool struct {
	classes [numClasses]sync.Pool // holds *[]byte of cap 1<<(minClassBits+i)
	// hdrs recycles the *[]byte header boxes themselves so that a warm
	// Get/Put cycle performs zero allocations: storing a bare []byte in
	// a sync.Pool would box a fresh slice header on every Put.
	hdrs sync.Pool

	gets, hits, misses, oversize atomic.Int64
	puts, putDropped, bytesAlloc atomic.Int64

	// metrics, when non-nil, receives one pool.alloc observation (value:
	// bytes) per miss and one pool.oversize per bypass.  Set before the
	// pool is shared.
	metrics *trace.Metrics

	// checked, when non-nil, holds the misuse-detector state (see
	// NewChecked in checked.go).
	checked *checkedState
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// Global is the default pool used by core and the transports when no
// explicit pool is configured.
var Global = New()

// SetMetrics wires the pool's allocation events into a trace metric
// set.  Call before the pool is shared between goroutines.
func (p *Pool) SetMetrics(m *trace.Metrics) { p.metrics = m }

// classFor returns the smallest class index whose size is >= n, or -1
// when n exceeds the largest class.  n must be >= 1.
func classFor(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n), with classFor(1) == 0
	if b < minClassBits {
		return 0
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// classSize is the buffer capacity of class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Get returns a buffer of length n.  The buffer's contents are
// unspecified (recycled buffers retain old bytes); callers must fully
// overwrite or ReadFull into it before reading.  n <= 0 returns nil.
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]byte, n)
	}
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		p.oversize.Add(1)
		p.bytesAlloc.Add(int64(n))
		if p.metrics != nil {
			p.metrics.Observe(trace.PhasePoolOversize, int64(n))
		}
		return make([]byte, n)
	}
	if hp, _ := p.classes[c].Get().(*[]byte); hp != nil {
		buf := (*hp)[:n]
		*hp = nil
		p.hdrs.Put(hp)
		p.hits.Add(1)
		if p.checked != nil {
			p.checked.onGet(buf)
		}
		return buf
	}
	p.misses.Add(1)
	p.bytesAlloc.Add(int64(classSize(c)))
	if p.metrics != nil {
		p.metrics.Observe(trace.PhasePoolAlloc, int64(classSize(c)))
	}
	return make([]byte, classSize(c))[:n]
}

// Put returns a buffer to the pool.  The caller relinquishes the buffer
// — and every slice aliasing it — entirely; a second Put, or any read
// or write after Put, corrupts whoever gets the buffer next (the
// Checked pool turns both into panics).  Buffers smaller than the
// smallest class are dropped.  Put(nil) is a no-op.
func (p *Pool) Put(buf []byte) {
	if p == nil || cap(buf) < MinBuf {
		if p != nil && buf != nil {
			p.putDropped.Add(1)
		}
		return
	}
	// File the buffer under the largest class not exceeding its
	// capacity, so a Get of that class never yields a too-small buffer.
	c := bits.Len(uint(cap(buf))) - 1 - minClassBits
	if c >= numClasses {
		c = numClasses - 1
	}
	if p.checked != nil {
		p.checked.onPut(buf, classSize(c))
	}
	hp, _ := p.hdrs.Get().(*[]byte)
	if hp == nil {
		hp = new([]byte)
	}
	*hp = buf[:classSize(c)]
	p.classes[c].Put(hp)
	p.puts.Add(1)
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Gets:       p.gets.Load(),
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Oversize:   p.oversize.Load(),
		Puts:       p.puts.Load(),
		PutDropped: p.putDropped.Load(),
		BytesAlloc: p.bytesAlloc.Load(),
	}
}
