package pool

import (
	"runtime/debug"
	"testing"

	"repro/internal/trace"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {511, 0}, {512, 0}, {513, 1}, {1024, 1},
		{1 << 20, 11}, {1<<20 + 1, 12}, {MaxBuf, numClasses - 1}, {MaxBuf + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	for c := 0; c < numClasses; c++ {
		if got := classFor(classSize(c)); got != c {
			t.Errorf("classFor(classSize(%d)=%d) = %d", c, classSize(c), got)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	p := New()
	b := p.Get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("Get(1000): len=%d cap=%d, want 1000/1024", len(b), cap(b))
	}
	b[0], b[999] = 1, 2
	p.Put(b)
	b2 := p.Get(600)
	if len(b2) != 600 || cap(b2) != 1024 {
		t.Fatalf("Get(600) after Put: len=%d cap=%d", len(b2), cap(b2))
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats after round trip: %+v", st)
	}
}

func TestNilPoolAndEdgeCases(t *testing.T) {
	var p *Pool
	if b := p.Get(64); len(b) != 64 {
		t.Fatalf("nil pool Get(64): len=%d", len(b))
	}
	p.Put(make([]byte, 64)) // no-op
	if got := p.Stats(); got != (Stats{}) {
		t.Fatalf("nil pool stats: %+v", got)
	}

	q := New()
	if b := q.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := q.Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v, want nil", b)
	}
	q.Put(nil)
	q.Put(make([]byte, 16)) // below MinBuf: dropped
	if st := q.Stats(); st.Puts != 0 || st.PutDropped != 1 {
		t.Fatalf("small Put stats: %+v", st)
	}
	big := q.Get(MaxBuf + 1)
	if len(big) != MaxBuf+1 {
		t.Fatalf("oversize Get: len=%d", len(big))
	}
	if st := q.Stats(); st.Oversize != 1 {
		t.Fatalf("oversize stats: %+v", st)
	}
}

func TestPutFilesUnderFloorClass(t *testing.T) {
	p := New()
	// A 1536-cap buffer parks in the 1024 class: a Get(1024) may use it,
	// a Get(2048) must not.
	p.Put(make([]byte, 1536))
	b := p.Get(1024)
	if cap(b) < 1024 {
		t.Fatalf("Get(1024) got cap %d", cap(b))
	}
	p.Put(make([]byte, 1536))
	if b := p.Get(2048); cap(b) < 2048 {
		t.Fatalf("Get(2048) got cap %d", cap(b))
	}
}

func TestMetricsWiring(t *testing.T) {
	p := New()
	m := trace.NewMetrics()
	p.SetMetrics(m)
	p.Put(p.Get(4096)) // miss
	p.Get(4096)        // hit
	p.Get(MaxBuf + 5)  // oversize
	if h := m.Hist(trace.PhasePoolAlloc); h == nil || h.Count() != 1 {
		t.Fatalf("pool.alloc observations: %v", h.Count())
	}
	if h := m.Hist(trace.PhasePoolOversize); h == nil || h.Count() != 1 {
		t.Fatalf("pool.oversize observations: %v", h.Count())
	}
}

// TestWarmGetPutAllocFree is the pool's own allocation contract: a warm
// Get/Put cycle performs zero allocations (the *[]byte header boxes are
// recycled along with the buffers).
func TestWarmGetPutAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	p := New()
	for i := 0; i < 4; i++ {
		p.Put(p.Get(64 << 10))
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := p.Get(64 << 10)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocated %.1f times per run, want 0", allocs)
	}
}

func TestCheckedDoublePut(t *testing.T) {
	p := NewChecked()
	b := p.Get(2048)
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put did not panic")
		}
	}()
	p.Put(b)
}

func TestCheckedUseAfterPut(t *testing.T) {
	// GC off so sync.Pool cannot drop the parked buffer between the Put
	// and the verifying Get.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	p := NewChecked()
	b := p.Get(2048)
	p.Put(b)
	b[100] = 42 // illegal: write after Put
	defer func() {
		if recover() == nil {
			t.Fatal("Get after a post-Put write did not panic")
		}
	}()
	p.Get(2048)
}

func TestCheckedCleanReuse(t *testing.T) {
	p := NewChecked()
	for i := 0; i < 10; i++ {
		b := p.Get(4096)
		for j := range b {
			b[j] = byte(i)
		}
		p.Put(b)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	p := New()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				b := p.Get(1 + (g*997+i*131)%(256<<10))
				if len(b) == 0 {
					t.Error("empty buffer")
					return
				}
				b[len(b)-1] = byte(i)
				p.Put(b)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
