package pool

import (
	"fmt"
	"sync"
)

// poisonByte fills buffers parked in a Checked pool.  Any byte that
// differs on the next Get proves a write-after-Put.
const poisonByte = 0xDB

// checkedState is the misuse detector attached by NewChecked: it
// poisons every parked buffer and tracks, by backing-array identity,
// which buffers are currently parked, turning double-Put and
// use-after-Put into panics at the offending call site.
type checkedState struct {
	mu sync.Mutex
	// parked maps the first byte of a parked buffer to its poisoned
	// length.  The *byte key keeps the backing array alive, so a parked
	// address can never be recycled by the allocator and misattributed.
	parked map[*byte]int
}

// NewChecked returns a pool in checked (debug) mode: Put poisons the
// buffer and records it as parked; a second Put of the same buffer
// panics ("double put"), and a Get that finds the poison disturbed
// panics ("use after put").  Checked pools are for tests — poisoning
// and verification touch every byte, and parked buffers are pinned —
// but are drop-in: the race-mode suites run the full collective stack
// over one.
func NewChecked() *Pool {
	return &Pool{checked: &checkedState{parked: make(map[*byte]int)}}
}

// bufKey identifies a buffer by its first backing byte.
func bufKey(buf []byte) *byte {
	b := buf[:1]
	return &b[0]
}

// onPut runs before a buffer is parked: detect double-Put, then poison
// the full class size that a future Get may hand out.
func (cs *checkedState) onPut(buf []byte, size int) {
	key := bufKey(buf)
	cs.mu.Lock()
	if _, dup := cs.parked[key]; dup {
		cs.mu.Unlock()
		panic(fmt.Sprintf("pool: double put of %d-byte buffer", cap(buf)))
	}
	cs.parked[key] = size
	cs.mu.Unlock()
	full := buf[:size]
	for i := range full {
		full[i] = poisonByte
	}
}

// onGet runs after a buffer leaves a freelist: verify the poison is
// intact, then un-park it.
func (cs *checkedState) onGet(buf []byte) {
	key := bufKey(buf)
	cs.mu.Lock()
	size, ok := cs.parked[key]
	delete(cs.parked, key)
	cs.mu.Unlock()
	if !ok {
		// A buffer the detector never saw parked (sync.Pool handed back
		// something from before the detector attached); nothing to check.
		return
	}
	full := buf[:1][:size]
	for i, b := range full {
		if b != poisonByte {
			panic(fmt.Sprintf("pool: use after put: byte %d of a parked %d-byte buffer was modified", i, size))
		}
	}
}
