// Package repro's root benchmark suite regenerates reduced-size versions
// of every table and figure of the paper's evaluation as testing.B
// benchmarks, plus ablation benchmarks for the design choices called out
// in DESIGN.md §5.  The full-size experiments are run by cmd/figures.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/btio"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/fotf"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/storage"
	"repro/internal/tileio"
)

var engines = []core.Engine{core.ListBased, core.Listless}

func benchNoncontig(b *testing.B, cfg noncontig.Config) {
	b.Helper()
	// Amortize world setup over enough repetitions that the measured
	// time is dominated by the I/O path, not by goroutine spawning.
	reps := int64(4<<20) / cfg.DataPerProc()
	if reps < 1 {
		reps = 1
	}
	if reps > 64 {
		reps = 64
	}
	cfg.Reps = int(reps)
	cfg.Verify = false
	b.SetBytes(2 * cfg.DataPerProc() * reps) // writes + reads per iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noncontig.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 is the independent-access vector-length sweep
// (S_block = 8 B, P = 2) of Figure 5.
func BenchmarkFig5(b *testing.B) {
	for _, eng := range engines {
		for _, pat := range []noncontig.Pattern{noncontig.NcNc, noncontig.NcC, noncontig.CNc} {
			for _, nblock := range []int64{16, 1024, 16384} {
				b.Run(fmt.Sprintf("%s/%s/Nblock=%d", eng, pat, nblock), func(b *testing.B) {
					benchNoncontig(b, noncontig.Config{
						P: 2, Blockcount: nblock, Blocklen: 8,
						Pattern: pat, Engine: eng,
					})
				})
			}
		}
	}
}

// BenchmarkFig6 is the collective-access vector-length sweep
// (S_block = 8 B, P = 8) of Figure 6.
func BenchmarkFig6(b *testing.B) {
	for _, eng := range engines {
		for _, pat := range []noncontig.Pattern{noncontig.NcNc, noncontig.NcC, noncontig.CNc} {
			for _, nblock := range []int64{16, 1024, 16384} {
				b.Run(fmt.Sprintf("%s/%s/Nblock=%d", eng, pat, nblock), func(b *testing.B) {
					benchNoncontig(b, noncontig.Config{
						P: 8, Blockcount: nblock, Blocklen: 8,
						Pattern: pat, Collective: true, Engine: eng,
					})
				})
			}
		}
	}
}

// BenchmarkFig7 is the independent-access blocksize sweep
// (N_block = 8, P = 2) of Figure 7.
func BenchmarkFig7(b *testing.B) {
	for _, eng := range engines {
		for _, pat := range []noncontig.Pattern{noncontig.NcNc, noncontig.NcC, noncontig.CNc} {
			for _, sblock := range []int64{8, 512, 16384} {
				b.Run(fmt.Sprintf("%s/%s/Sblock=%d", eng, pat, sblock), func(b *testing.B) {
					benchNoncontig(b, noncontig.Config{
						P: 2, Blockcount: 8, Blocklen: sblock,
						Pattern: pat, Engine: eng,
					})
				})
			}
		}
	}
}

// BenchmarkFig8 is the collective-access process-count sweep
// (S_block = 2048 B, N_block = 64) of Figure 8.
func BenchmarkFig8(b *testing.B) {
	for _, eng := range engines {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/P=%d", eng, p), func(b *testing.B) {
				benchNoncontig(b, noncontig.Config{
					P: p, Blockcount: 64, Blocklen: 2048,
					Pattern: noncontig.NcNc, Collective: true, Engine: eng,
				})
			})
		}
	}
}

// BenchmarkTable3 runs the BTIO kernel (Table 3) at reduced size:
// classes S and W, 2 steps per iteration.  cmd/figures runs classes B/C.
func BenchmarkTable3(b *testing.B) {
	for _, eng := range engines {
		for _, class := range []string{"S", "W"} {
			cl, err := btio.ClassByName(class)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/class%s/P=4", eng, class), func(b *testing.B) {
				cfg := btio.Config{
					Class: cl, P: 4, Engine: eng,
					Steps: 2, Ghost: 1, ComputeIters: 0,
				}
				b.SetBytes(cfg.DRun())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := btio.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationCopy isolates the copy primitive: packing a strided
// buffer via flattening-on-the-fly run groups versus walking an ol-list
// tuple by tuple (DESIGN.md ablation 3).
func BenchmarkAblationCopy(b *testing.B) {
	for _, blocklen := range []int64{8, 64, 1024} {
		count := int64((1 << 20) / blocklen) // ~1 MiB of data
		dt, err := datatype.Hvector(count, blocklen, 2*blocklen, datatype.Byte)
		if err != nil {
			b.Fatal(err)
		}
		src := make([]byte, dt.Extent())
		dst := make([]byte, dt.Size())
		b.Run(fmt.Sprintf("listless/Sblock=%d", blocklen), func(b *testing.B) {
			b.SetBytes(dt.Size())
			for i := 0; i < b.N; i++ {
				fotf.PackCount(dst, src, 1, dt, 0)
			}
		})
		b.Run(fmt.Sprintf("list-based/Sblock=%d", blocklen), func(b *testing.B) {
			l := flatten.Flatten(dt)
			b.SetBytes(dt.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flatten.PackList(dst, src, l, dt.Extent(), 1, 0, dt.Size())
			}
		})
	}
}

// BenchmarkAblationSeek isolates positioning: O(depth) navigation versus
// linear ol-list traversal at random offsets in a large fileview
// (DESIGN.md ablation 4).
func BenchmarkAblationSeek(b *testing.B) {
	const nblock = 1 << 16
	dt, err := datatype.Hvector(nblock, 8, 16, datatype.Byte)
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]int64, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range offs {
		offs[i] = r.Int63n(dt.Size())
	}
	b.Run("listless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fotf.StartPos(dt, offs[i%len(offs)])
		}
	})
	b.Run("list-based", func(b *testing.B) {
		v := flatten.NewView(0, dt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.DataToFile(offs[i%len(offs)])
		}
	})
}

// BenchmarkAblationViewCache measures fileview caching: listless
// collective writes with the cache on versus re-exchanging the encoded
// views on every access (DESIGN.md ablation 1).
func BenchmarkAblationViewCache(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "cached"
		if disable {
			name = "per-access-exchange"
		}
		b.Run(name, func(b *testing.B) {
			benchNoncontig(b, noncontig.Config{
				P: 4, Blockcount: 4096, Blocklen: 8,
				Pattern: noncontig.NcNc, Collective: true,
				Engine:  core.Listless,
				Options: core.Options{DisableViewCache: disable},
			})
		})
	}
}

// BenchmarkAblationMergeview measures the collective-write pre-read
// optimization: fully covering writes with and without the coverage
// check (DESIGN.md ablation 2).
func BenchmarkAblationMergeview(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "merge-check"
		if disable {
			name = "always-preread"
		}
		b.Run(name, func(b *testing.B) {
			benchNoncontig(b, noncontig.Config{
				P: 4, Blockcount: 8192, Blocklen: 64,
				Pattern: noncontig.CNc, Collective: true,
				Engine:  core.Listless,
				Options: core.Options{DisableMergeCheck: disable},
			})
		})
	}
}

// BenchmarkAblationSieveBuf sweeps the data-sieving buffer size for
// independent non-contiguous access (DESIGN.md ablation 5).
func BenchmarkAblationSieveBuf(b *testing.B) {
	for _, size := range []int{16 << 10, 128 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("sievebuf=%dKiB", size>>10), func(b *testing.B) {
			benchNoncontig(b, noncontig.Config{
				P: 2, Blockcount: 16384, Blocklen: 8,
				Pattern: noncontig.CNc, Engine: core.Listless,
				Options: core.Options{SieveBufSize: size},
			})
		})
	}
}

// BenchmarkMPIPingPong characterizes the substrate's message latency so
// bandwidth numbers can be put in context.
func BenchmarkMPIPingPong(b *testing.B) {
	for _, size := range []int{64, 64 << 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			payload := make([]byte, size)
			_, err := mpi.Run(2, func(p *mpi.Proc) {
				for i := 0; i < b.N; i++ {
					if p.Rank() == 0 {
						p.Send(1, 1, payload)
						p.Recv(1, 2)
					} else {
						p.Recv(0, 1)
						p.Send(0, 2, payload)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkStorageBackends characterizes the backends' contiguous
// bandwidth — the c-c baseline every non-contiguous result is relative
// to.
func BenchmarkStorageBackends(b *testing.B) {
	const size = 1 << 20
	buf := make([]byte, size)
	b.Run("mem-write", func(b *testing.B) {
		m := storage.NewMem()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if _, err := m.WriteAt(buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mem-read", func(b *testing.B) {
		m := storage.NewMem()
		m.WriteAt(buf, 0)
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := storage.ReadFull(m, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIONodes sweeps the aggregator count of two-phase
// collective I/O (ROMIO's cb_nodes hint).
func BenchmarkAblationIONodes(b *testing.B) {
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ionodes=%d", nodes), func(b *testing.B) {
			benchNoncontig(b, noncontig.Config{
				P: 8, Blockcount: 2048, Blocklen: 64,
				Pattern: noncontig.NcNc, Collective: true,
				Engine:  core.Listless,
				Options: core.Options{IONodes: nodes},
			})
		})
	}
}

// BenchmarkTileIO runs the mpi-tile-io-style 2D kernel: collective write
// of disjoint tiles plus collective read of overlapping ghosted tiles.
func BenchmarkTileIO(b *testing.B) {
	for _, eng := range engines {
		for _, overlap := range []int64{0, 4} {
			b.Run(fmt.Sprintf("%s/overlap=%d", eng, overlap), func(b *testing.B) {
				cfg := tileio.Config{
					TilesX: 2, TilesY: 2,
					TileX: 256, TileY: 256, ElemSize: 8,
					Overlap: overlap, Collective: true, Engine: eng,
					Reps: 4,
				}
				b.SetBytes(2 * cfg.TileX * cfg.TileY * cfg.ElemSize * int64(cfg.Reps))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tileio.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSieveVsDirect compares data sieving against the
// direct per-block access alternative on accesses of varying density —
// the trade-off the paper's outlook (§5) raises, implemented via
// Options.SieveDensity.
func BenchmarkAblationSieveVsDirect(b *testing.B) {
	// gap multiplies the stride: gap=2 → 50% dense, gap=128 → sparse.
	for _, gap := range []int64{2, 16, 128} {
		for _, mode := range []string{"sieve", "direct"} {
			b.Run(fmt.Sprintf("gap=%d/%s", gap, mode), func(b *testing.B) {
				var density float64
				if mode == "direct" {
					density = 1.0 // threshold above any density: always direct
				}
				be := storage.NewMem()
				sh := core.NewShared(be)
				dt, err := datatype.Hvector(4096, 64, 64*gap, datatype.Byte)
				if err != nil {
					b.Fatal(err)
				}
				d := dt.Size()
				data := make([]byte, d)
				b.SetBytes(2 * d)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := mpi.Run(1, func(p *mpi.Proc) {
						f, err := core.Open(p, sh, core.Options{SieveDensity: density})
						if err != nil {
							panic(err)
						}
						defer f.Close()
						if err := f.SetView(0, datatype.Byte, dt); err != nil {
							panic(err)
						}
						if _, err := f.WriteAt(0, d, datatype.Byte, data); err != nil {
							panic(err)
						}
						if _, err := f.ReadAt(0, d, datatype.Byte, data); err != nil {
							panic(err)
						}
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
